package lint

import (
	"go/ast"
)

var analyzerWireErr = &Analyzer{
	Name: "wireerr",
	Doc: "the transport must not silently discard errors from wire.WriteMessage, " +
		"Flush, or net.Conn writes — a swallowed write error is how zombie writers are born",
	Run: runWireErr,
}

// wireErrPackages are the packages the check applies to (the transport
// and the session hub own every socket write in the tree).
var wireErrPackages = map[string]bool{
	"volcast/internal/transport": true,
	"volcast/internal/hub":       true,
}

func runWireErr(p *Pass) {
	if !wireErrPackages[p.Pkg.Path] {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.ExprStmt:
				if call, ok := t.X.(*ast.CallExpr); ok {
					if what, is := writeCall(p.Pkg, call); is {
						report(p, call, what, "result dropped")
					}
				}
			case *ast.AssignStmt:
				if len(t.Rhs) != 1 {
					return true
				}
				call, ok := t.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				what, is := writeCall(p.Pkg, call)
				if !is {
					return true
				}
				allBlank := true
				for _, l := range t.Lhs {
					if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if allBlank {
					report(p, call, what, "assigned to _")
				}
			case *ast.GoStmt, *ast.DeferStmt:
				return true
			}
			return true
		})
	}
}

func report(p *Pass, call *ast.CallExpr, what, how string) {
	p.Reportf(call.Pos(),
		"check the error — count a metric, log, or tear the connection down; a deliberate "+
			"best-effort write needs //vollint:ignore wireerr <reason>",
		"error from %s discarded (%s)", what, how)
}

// writeCall reports whether call is a socket-write-ish call whose error
// matters: wire.WriteMessage, a Flush() on a buffered writer, or a
// Write on a net.Conn.
func writeCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	if path, name, ok := pkgFuncCall(pkg, call); ok {
		if path == "volcast/internal/wire" && name == "WriteMessage" {
			return "wire.WriteMessage", true
		}
		return "", false
	}
	if recv, name, typ, ok := methodCall(pkg, call); ok {
		switch name {
		case "Flush":
			if isNamedType(typ, "bufio", "Writer") {
				return exprString(pkg, recv) + ".Flush", true
			}
		case "Write":
			if implementsIface(typ, lookupInterface(pkg, "net", "Conn")) {
				return exprString(pkg, recv) + ".Write", true
			}
		}
	}
	return "", false
}
