package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package, the unit an
// Analyzer runs over.
type Package struct {
	// Path is the import path findings and analyzer applicability key off
	// (fixtures may load a directory under an overridden path).
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Types and Info carry the go/types results. Info always has Defs,
	// Uses, Selections and Types populated.
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds every type-check error encountered; analyzers still
	// run (the syntax is intact), but vollint reports them and fails.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-local imports are resolved recursively against
// the module tree, everything else (std) goes through the go/importer
// source importer. One Loader shares a FileSet across every package it
// loads, so positions are comparable.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModDir  string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the enclosing module of dir (walking up to go.mod)
// and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("lint: no go.mod above %s", abs)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", modDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  modDir,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// Import implements types.Importer: module-local paths load recursively
// from source, everything else falls back to the std source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads a module-local import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	dir := filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
	return l.loadDir(dir, path)
}

// loadDir parses and type-checks the non-test files of one directory
// under the given import path, memoized by path.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}

	p := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.Fset,
		Info: &types.Info{
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Types:      map[ast.Expr]types.TypeAndValue{},
		},
		Files: files,
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, p.Info)
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	p.Types = tpkg
	l.pkgs[path] = p
	return p, nil
}

// Load resolves package patterns into loaded packages. A pattern is a
// directory, an import path within the module, or either followed by
// "/..." for a recursive walk (testdata, vendor, hidden and underscore
// directories are skipped, as the go tool does).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	seen := map[string]bool{}
	var out []*Package
	add := func(dir string) error {
		path, err := l.importPath(dir)
		if err != nil {
			return err
		}
		if seen[path] {
			return nil
		}
		seen[path] = true
		p, err := l.loadDir(dir, path)
		if err != nil {
			return err
		}
		out = append(out, p)
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			// Import paths within the module double as directories.
			if rest, ok := strings.CutPrefix(pat, l.ModPath); ok {
				dir = filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimPrefix(rest, "/")))
			}
		}
		if !recursive {
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if !hasGoFiles(p) {
				return nil
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// importPath maps a directory inside the module to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModDir)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
