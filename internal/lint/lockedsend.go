package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var analyzerLockedSend = &Analyzer{
	Name: "lockedsend",
	Doc: "no channel send or blocking I/O while holding a sync.Mutex/RWMutex — " +
		"a full channel or a stalled peer would pin the lock and wedge every other locker",
	Run: runLockedSend,
}

// lsScan walks one function body in statement order, tracking which
// mutexes are held. It is a heuristic, tuned to never cry wolf: branches
// run on a copy of the held set (a conditional unlock never clears the
// outer state), deferred unlocks keep the lock held to the end, and
// nested function literals are scanned separately with a fresh state (a
// spawned or deferred closure does not hold the caller's lock).
type lsScan struct {
	p    *Pass
	held map[string]bool
	// queue collects nested FuncLits for their own scan.
	queue *[]*ast.FuncLit
}

func runLockedSend(p *Pass) {
	var queue []*ast.FuncLit
	for _, body := range funcBodies(p.Pkg) {
		s := &lsScan{p: p, held: map[string]bool{}, queue: &queue}
		s.stmts(body.List)
	}
	for len(queue) > 0 {
		lit := queue[0]
		queue = queue[1:]
		s := &lsScan{p: p, held: map[string]bool{}, queue: &queue}
		s.stmts(lit.Body.List)
	}
}

func (s *lsScan) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

// branch runs a statement list on a copy of the held set, so lock state
// changes inside one control-flow arm do not leak into the code after it.
func (s *lsScan) branch(list []ast.Stmt) {
	saved := s.held
	s.held = map[string]bool{}
	for k := range saved {
		s.held[k] = true
	}
	s.stmts(list)
	s.held = saved
}

func (s *lsScan) stmt(st ast.Stmt) {
	switch t := st.(type) {
	case *ast.ExprStmt:
		s.expr(t.X)
	case *ast.SendStmt:
		s.expr(t.Chan)
		s.expr(t.Value)
		s.flagSend(t.Arrow, "channel send")
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			s.expr(e)
		}
		for _, e := range t.Lhs {
			s.expr(e)
		}
	case *ast.DeclStmt:
		s.expr(t.Decl)
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			s.expr(e)
		}
	case *ast.IfStmt:
		if t.Init != nil {
			s.stmt(t.Init)
		}
		s.expr(t.Cond)
		s.branch(t.Body.List)
		if t.Else != nil {
			s.branch([]ast.Stmt{t.Else})
		}
	case *ast.ForStmt:
		if t.Init != nil {
			s.stmt(t.Init)
		}
		if t.Cond != nil {
			s.expr(t.Cond)
		}
		s.branch(t.Body.List)
	case *ast.RangeStmt:
		s.expr(t.X)
		s.branch(t.Body.List)
	case *ast.BlockStmt:
		s.stmts(t.List)
	case *ast.LabeledStmt:
		s.stmt(t.Stmt)
	case *ast.SwitchStmt:
		if t.Init != nil {
			s.stmt(t.Init)
		}
		if t.Tag != nil {
			s.expr(t.Tag)
		}
		for _, cl := range t.Body.List {
			s.branch(cl.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range t.Body.List {
			s.branch(cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range t.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		for _, cl := range t.Body.List {
			comm := cl.(*ast.CommClause)
			// A send in a select without a default blocks exactly like a
			// bare send; with a default it cannot.
			if send, ok := comm.Comm.(*ast.SendStmt); ok && !hasDefault {
				s.flagSend(send.Arrow, "blocking select send")
			}
			s.branch(comm.Body)
		}
	case *ast.GoStmt:
		// The goroutine does not hold the spawner's lock; its body is
		// scanned separately. Arguments evaluate inline, though.
		s.callArgsOnly(t.Call)
	case *ast.DeferStmt:
		// Deferred unlocks keep the lock held for the rest of the body;
		// the deferred call itself runs after any send below it.
		if _, name, typ, ok := methodCall(s.p.Pkg, t.Call); ok && isMutex(typ) &&
			(name == "Unlock" || name == "RUnlock") {
			return
		}
		s.callArgsOnly(t.Call)
	}
}

// callArgsOnly scans a call's arguments (queuing FuncLits) without
// treating the call itself as executing inline.
func (s *lsScan) callArgsOnly(call *ast.CallExpr) {
	for _, a := range call.Args {
		s.expr(a)
	}
}

// expr scans one expression for lock transitions and blocking calls,
// queuing any function literal for a separate scan.
func (s *lsScan) expr(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch t := node.(type) {
		case *ast.FuncLit:
			*s.queue = append(*s.queue, t)
			return false
		case *ast.CallExpr:
			s.call(t)
		}
		return true
	})
}

func (s *lsScan) call(call *ast.CallExpr) {
	if recv, name, typ, ok := methodCall(s.p.Pkg, call); ok {
		if isMutex(typ) {
			key := exprString(s.p.Pkg, recv)
			switch name {
			case "Lock", "RLock":
				s.held[key] = true
			case "Unlock", "RUnlock":
				delete(s.held, key)
			}
			return
		}
		// Blocking socket I/O under a lock stalls every other locker for
		// as long as the peer does.
		if name == "Read" || name == "Write" {
			conn := lookupInterface(s.p.Pkg, "net", "Conn")
			if implementsIface(typ, conn) {
				s.flag(call.Pos(), "net.Conn."+name)
			}
		}
		return
	}
	if path, name, ok := pkgFuncCall(s.p.Pkg, call); ok {
		switch {
		case path == "volcast/internal/wire" && (name == "WriteMessage" || name == "ReadMessage"):
			s.flag(call.Pos(), "wire."+name)
		case path == "time" && name == "Sleep":
			s.flag(call.Pos(), "time.Sleep")
		}
	}
}

// flagSend reports a send at pos when any mutex is held.
func (s *lsScan) flagSend(pos token.Pos, what string) {
	s.flag(pos, what)
}

// flag reports a blocking operation at pos when any mutex is held.
func (s *lsScan) flag(pos token.Pos, what string) {
	if len(s.held) == 0 {
		return
	}
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.p.Reportf(pos,
		"release the mutex before blocking, or use a select with a default case",
		"%s while holding %s can wedge every other locker", what, strings.Join(keys, ", "))
}

func isMutex(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}
