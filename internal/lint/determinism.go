package lint

import (
	"go/ast"
)

// simPathPackages are the packages whose results must be a pure function
// of the seed: the worker-count and cache parity tests (and every
// experiment table) depend on byte-identical reruns. Wall-clock belongs
// only in obs, metrics, transport, faultnet and the cmd/example binaries.
var simPathPackages = map[string]bool{
	"volcast/internal/phy":         true,
	"volcast/internal/mac":         true,
	"volcast/internal/beam":        true,
	"volcast/internal/multicast":   true,
	"volcast/internal/core":        true,
	"volcast/internal/predict":     true,
	"volcast/internal/pointcloud":  true,
	"volcast/internal/codec":       true,
	"volcast/internal/experiments": true,
	"volcast/internal/trace":       true,
	// vivo builds the store the parity tests hash; its timing must flow
	// through the tracer/metrics layers, not raw time.Now.
	"volcast/internal/vivo": true,
	// tier maps strides to layer prefixes for every serving plan; a
	// nondeterministic rung choice would desync hub buffers from pull
	// tokens and break the layer parity renders.
	"volcast/internal/tier": true,
}

// wallClockFuncs are the time functions that read or depend on the wall
// clock (or spawn runtime timers).
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// seededRandCtors are the global math/rand functions that construct
// explicitly seeded generators — the only sanctioned use of the package
// outside tests.
var seededRandCtors = map[string]bool{"New": true, "NewSource": true}

var analyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc: "sim-path packages must be a pure function of the seed: no wall-clock " +
		"reads (time.Now/Sleep/...) and, module-wide, no un-seeded global math/rand",
	Run: runDeterminism,
}

func runDeterminism(p *Pass) {
	simPath := simPathPackages[p.Pkg.Path]
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFuncCall(p.Pkg, call)
			if !ok {
				return true
			}
			switch {
			case simPath && path == "time" && wallClockFuncs[name]:
				p.Reportf(call.Pos(),
					"route timing through obs.Tracer / metrics helpers, or take an explicit clock from the caller",
					"wall-clock time.%s in sim-path package %s breaks seed-determinism", name, p.Pkg.Path)
			case (path == "math/rand" || path == "math/rand/v2") && !seededRandCtors[name]:
				p.Reportf(call.Pos(),
					"draw from a *rand.Rand built with rand.New(rand.NewSource(seed))",
					"global math/rand.%s is un-seeded shared state; results stop being a function of the seed", name)
			}
			return true
		})
	}
}
