package lint

import (
	"go/ast"
	"go/types"
)

var analyzerGoroutineHygiene = &Analyzer{
	Name: "goroutinehygiene",
	Doc: "every goroutine spawned by library code must be reapable: its body must " +
		"reference a context, a done/stop channel, or a WaitGroup",
	Run: runGoroutineHygiene,
}

func runGoroutineHygiene(p *Pass) {
	// Library code only: main packages own the process lifetime, and the
	// PR 3/4 leaks were all in internal packages.
	if p.Pkg.Types == nil || p.Pkg.Types.Name() == "main" {
		return
	}
	// Index same-package function declarations so `go s.frameLoop()` can
	// be checked against frameLoop's body, not just literal closures.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goTargetBody(p.Pkg, decls, gs.Call)
			if body == nil {
				return true // body not in this package; nothing to judge
			}
			if !hasLifecycleRef(p.Pkg, body) {
				p.Reportf(gs.Pos(),
					"plumb a ctx or done channel into the goroutine (or track it with a WaitGroup) so shutdown can reap it",
					"goroutine body references no context, channel, or WaitGroup — nothing can stop or await it")
			}
			return true
		})
	}
}

// goTargetBody resolves the body the go statement will run: a literal's
// body, or the declaration of a same-package function/method.
func goTargetBody(pkg *Package, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[pkg.Info.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pkg.Info.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// hasLifecycleRef reports whether the body (including nested literals)
// touches anything a shutdown path could use to stop or await it: a
// context.Context, a sync.WaitGroup, or any channel-typed value.
func hasLifecycleRef(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[e]
		if !ok || tv.Type == nil {
			return true
		}
		t := tv.Type
		if _, isChan := t.Underlying().(*types.Chan); isChan ||
			isNamedType(t, "context", "Context") ||
			isNamedType(t, "sync", "WaitGroup") {
			found = true
			return false
		}
		return true
	})
	return found
}
