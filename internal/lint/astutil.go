package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// pkgFuncCall reports the (package path, function name) of a call to a
// package-level function through a package selector (e.g. time.Now()).
func pkgFuncCall(pkg *Package, call *ast.CallExpr) (path, name string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	ident, okX := ast.Unparen(sel.X).(*ast.Ident)
	if !okX {
		return "", "", false
	}
	pn, okPkg := pkg.Info.Uses[ident].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCall reports the receiver expression, method name and receiver
// type of a method call (e.g. c.mu.Lock() -> c.mu, "Lock", sync.Mutex).
func methodCall(pkg *Package, call *ast.CallExpr) (recv ast.Expr, name string, typ types.Type, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return nil, "", nil, false
	}
	if s, okS := pkg.Info.Selections[sel]; !okS || s.Kind() != types.MethodVal {
		return nil, "", nil, false
	}
	tv, okT := pkg.Info.Types[sel.X]
	if !okT {
		return nil, "", nil, false
	}
	return sel.X, sel.Sel.Name, tv.Type, true
}

// isNamedType reports whether t (or the pointee, for pointers) is the
// named type path.name.
func isNamedType(t types.Type, path, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// lookupInterface finds an exported interface type in a directly imported
// package (e.g. net.Conn), or nil when the package is not imported.
func lookupInterface(pkg *Package, path, name string) *types.Interface {
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() != path {
			continue
		}
		obj := imp.Scope().Lookup(name)
		if obj == nil {
			return nil
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			return nil
		}
		return iface
	}
	return nil
}

// implementsIface reports whether t or *t implements iface.
func implementsIface(t types.Type, iface *types.Interface) bool {
	if iface == nil || t == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// exprString renders an expression compactly for messages and lock keys.
func exprString(pkg *Package, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pkg.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// funcBodies yields every function body of the package paired with the
// declaration it belongs to: all FuncDecl bodies plus package-level
// FuncLits outside any FuncDecl (var initializers). Nested FuncLits are
// NOT yielded separately — analyzers that need per-closure scopes walk
// into them on their own.
func funcBodies(pkg *Package) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					out = append(out, d.Body)
				}
			case *ast.GenDecl:
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						out = append(out, lit.Body)
						return false
					}
					return true
				})
			}
		}
	}
	return out
}
