package stream

import (
	"context"
	"fmt"
	"time"

	"volcast/internal/abr"
	"volcast/internal/blockcache"
	"volcast/internal/codec"
	"volcast/internal/core"
	"volcast/internal/geom"
	"volcast/internal/metrics"
	"volcast/internal/obs"
	"volcast/internal/par"
	"volcast/internal/phy"
	"volcast/internal/pointcloud"
	"volcast/internal/predict"
	"volcast/internal/trace"
	"volcast/internal/vivo"
)

// SessionConfig configures a time-stepped multi-user streaming session.
type SessionConfig struct {
	// Users is the number of concurrent viewers.
	Users int
	// Seconds is the session length.
	Seconds float64
	// Mode selects the delivery pipeline.
	Mode Mode
	// CustomBeams enables multi-lobe multicast beams.
	CustomBeams bool
	// Predictive enables joint viewport prediction, blockage forecasting
	// and the cross-layer controller (prefetch / beam switch / regroup).
	Predictive bool
	// StartQuality indexes the quality ladder each user starts at.
	StartQuality pointcloud.Quality
	// AdaptQuality lets the controller move users across the ladder.
	AdaptQuality bool
	// UseMPC selects the model-predictive quality controller instead of
	// the rule-based cross-layer controller (an ablation knob; both read
	// the same cross-layer bandwidth prediction).
	UseMPC bool
	// DecodeClouds makes the session actually decode every delivered cell
	// per user each step (the client render path), through the shared
	// content-addressed decode cache: overlapping viewports and repeated
	// frames decode each distinct block once instead of once per user.
	DecodeClouds bool
	// Fading adds seeded small-scale RSS fading per link (σ≈1.5 dB),
	// exercising the rate-adaptation loop with realistic fluctuation.
	Fading bool
	// Seed drives the fading processes (0 → 1).
	Seed int64
	// BufferSeconds is the client playback buffer capacity.
	BufferSeconds float64
	// Metrics receives per-step stage timings and counters (nil → the
	// process-wide default registry).
	Metrics *metrics.Registry
	// Trace receives per-frame, per-user, per-stage spans with deadline
	// attribution (nil → the process-wide tracer, which is itself nil
	// unless tracing was enabled).
	Trace *obs.Tracer
	// LinkCapMbps optionally caps each user's delivered link rate
	// (link emulation: a throttled or starved client). Non-nil len must
	// equal Users; 0 leaves a user uncapped. The cap applies to the
	// per-user delivery accounting and airtime attribution, not to the
	// shared MAC schedule.
	LinkCapMbps []float64
}

// QoE aggregates the session's quality-of-experience metrics.
type QoE struct {
	// AvgFPS is the mean delivered frame rate across users.
	AvgFPS float64
	// Stalls is the total rebuffering events across users.
	Stalls int
	// StallSeconds is the total stalled time across users.
	StallSeconds float64
	// AvgQuality is the mean quality rung (0=low..2=high) played.
	AvgQuality float64
	// QualitySwitches counts ladder moves across users.
	QualitySwitches int
	// BeamSwitches counts proactive reflection-path switches.
	BeamSwitches int
	// Regroups counts multicast regrouping events.
	Regroups int
	// MulticastShare is the multicast fraction of delivered bytes.
	MulticastShare float64
}

// Session is a running multi-user streaming session over the simulated
// WLAN. Construct with NewSession and advance with Run.
type Session struct {
	cfg     SessionConfig
	stores  map[pointcloud.Quality]*vivo.Store
	visByQ  map[pointcloud.Quality]*vivo.Visibility
	study   *trace.Study
	net     *Network
	planner *core.Planner
	decode  codec.DecodeRate
	decoder codec.Decoder
	joint   *predict.Joint
	ctrl    *abr.Controller
	mpc     *abr.MPC
	buffers []*abr.Buffer
	bwPred  []*abr.CrossLayer
	quality []pointcloud.Quality
	fading  []*phy.Fading
	reg     *metrics.Registry
	tr      *obs.Tracer
}

// NewSession validates the configuration and assembles a session.
// The stores map must hold one store per quality rung on the same grid
// layout; study must provide at least cfg.Users traces.
func NewSession(cfg SessionConfig, stores map[pointcloud.Quality]*vivo.Store, study *trace.Study, net *Network) (*Session, error) {
	if cfg.Users < 1 {
		return nil, fmt.Errorf("stream: need at least one user")
	}
	if study.Users() < cfg.Users {
		return nil, fmt.Errorf("stream: %d traces for %d users", study.Users(), cfg.Users)
	}
	if len(stores) == 0 {
		return nil, fmt.Errorf("stream: no content stores")
	}
	if _, ok := stores[cfg.StartQuality]; !ok {
		return nil, fmt.Errorf("stream: missing store for start quality %v", cfg.StartQuality)
	}
	if cfg.Seconds <= 0 {
		cfg.Seconds = 5
	}
	if cfg.BufferSeconds <= 0 {
		cfg.BufferSeconds = 1.0
	}
	if cfg.LinkCapMbps != nil && len(cfg.LinkCapMbps) != cfg.Users {
		return nil, fmt.Errorf("stream: %d link caps for %d users", len(cfg.LinkCapMbps), cfg.Users)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	tr := cfg.Trace
	if tr == nil {
		tr = obs.Default()
	}
	s := &Session{
		cfg:     cfg,
		stores:  stores,
		visByQ:  map[pointcloud.Quality]*vivo.Visibility{},
		study:   study,
		net:     net,
		planner: core.NewPlanner(net),
		decode:  codec.DefaultDecodeRate(),
		decoder: codec.Decoder{Cache: blockcache.Cells()},
		ctrl:    abr.NewController(abr.DefaultConfig()),
		mpc:     abr.NewMPC(),
		reg:     reg,
		tr:      tr,
	}
	s.planner.Metrics = reg
	s.planner.Trace = tr
	for q, st := range stores {
		s.visByQ[q] = vivo.New(st.Grid(), vivo.DefaultParams())
	}
	preds := make([]predict.Predictor, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		lin, err := predict.NewLinear(30, 20)
		if err != nil {
			return nil, err
		}
		preds[u] = lin
		s.buffers = append(s.buffers, abr.NewBuffer(cfg.BufferSeconds))
		s.bwPred = append(s.bwPred, abr.NewCrossLayer(abr.NewEWMA(0.3)))
		s.quality = append(s.quality, cfg.StartQuality)
	}
	if cfg.Fading {
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		for u := 0; u < cfg.Users; u++ {
			s.fading = append(s.fading, phy.NewFading(seed+int64(u)*7919))
		}
	}
	s.joint = predict.NewJoint(preds, geom.V(0, 1.2, 0))
	return s, nil
}

// qualityStep moves along the available ladder.
func (s *Session) qualityStep(q pointcloud.Quality, up bool) pointcloud.Quality {
	ladder := pointcloud.Qualities()
	idx := 0
	for i, l := range ladder {
		if l == q {
			idx = i
		}
	}
	for {
		if up {
			idx++
		} else {
			idx--
		}
		if idx < 0 || idx >= len(ladder) {
			return q
		}
		if _, ok := s.stores[ladder[idx]]; ok {
			return ladder[idx]
		}
	}
}

// Run advances the whole session and returns its QoE summary.
func (s *Session) Run() (QoE, error) {
	const dt = 1.0 / 30
	steps := int(s.cfg.Seconds * 30)
	var q QoE
	var mcBytes, totBytes float64
	var fpsSum float64
	horizon := 0.3

	for step := 0; step < steps; step++ {
		stepStart := time.Now()
		poses := make([]geom.Pose, s.cfg.Users)
		positions := make([]geom.Vec3, s.cfg.Users)
		for u := 0; u < s.cfg.Users; u++ {
			poses[u] = s.study.Traces[u].PoseAt(step)
			positions[u] = poses[u].Pos
		}
		if err := s.joint.Observe(poses); err != nil {
			return q, err
		}
		bodies := make([]phy.Body, s.cfg.Users)
		for u := range positions {
			bodies[u] = phy.DefaultBody(positions[u])
		}

		// Cross-layer forecasting: predicted poses → predicted blockages.
		var futureBlocked map[int]bool
		if s.cfg.Predictive && s.net.Kind == NetAD {
			predSpan := s.tr.Begin(step, obs.PipelineUser, obs.StagePredict)
			predPoses := s.joint.PredictAll(horizon)
			futureBlocked = map[int]bool{}
			for _, b := range predict.ForecastBlockages(s.net.Radio.Array.Pos, predPoses) {
				futureBlocked[b.User] = true
			}
			predSpan.End()
		}

		// Per-user requests at their current quality. The visibility
		// pipeline only reads shared state and each user's predictor is
		// private, so the culling fans out on the par pool by user index;
		// the stateful control reactions below stay sequential.
		reqs := make([]vivo.Request, s.cfg.Users)
		perUser := make([]core.FrameContent, s.cfg.Users)
		visDone := s.reg.Timer("session.visibility").Time()
		if err := par.ForEach(context.Background(), s.cfg.Users, func(u int) error {
			defer s.tr.Begin(step, u, obs.StageCull).End()
			st := s.stores[s.quality[u]]
			vis := s.visByQ[s.quality[u]]
			fi := step % st.NumFrames()
			perUser[u] = core.FrameContent{Store: st, Frame: fi}
			occ := st.Frame(fi).Occupied
			if s.cfg.Mode == ModeVanilla {
				reqs[u] = vivo.VanillaRequest(occ)
			} else {
				pose := poses[u]
				if s.cfg.Predictive {
					// Fetch for the predicted viewport (hides latency).
					pose = s.joint.Users[u].Predict(horizon)
				}
				reqs[u] = vis.Request(occ, pose)
			}
			return nil
		}); err != nil {
			return q, err
		}
		visDone()

		// Cross-layer reaction to predicted blockage (sequential: the
		// controller, buffers and QoE counters are shared state).
		beamSwitched := map[int]bool{}
		rateOverride := map[int]float64{}
		for u := 0; u < s.cfg.Users; u++ {
			if s.cfg.Predictive && futureBlocked[u] && s.net.Kind == NetAD {
				st := s.stores[s.quality[u]]
				fi := step % st.NumFrames()
				bytes := reqs[u].Bytes(st.SizeOracle(fi))
				st8 := abr.State{
					PredictedMbps:       s.bwPred[u].Predict(),
					DemandMbps:          codec.BitrateMbps(float64(bytes), 30),
					BufferLevel:         s.buffers[u].Level(),
					BufferCapacity:      s.buffers[u].Capacity,
					BlockageExpected:    true,
					ReflectionAvailable: true,
				}
				switch s.ctrl.Decide(st8) {
				case abr.ActionBeamSwitch:
					// Steer a dedicated beam along the strongest path
					// (reflection) instead of the blocked LOS sector.
					if dir, ok := s.net.Radio.BestPathDir(positions[u]); ok {
						w := s.net.Radio.Array.SteerTo(dir)
						rss := s.net.Radio.RSS(w, positions[u])
						if r2 := s.net.MAC.EffectiveRate(phy.RateForRSS(phy.AD_SC_MCS, rss)); r2 > 0 {
							rateOverride[u] = r2
						}
						q.BeamSwitches++
						beamSwitched[u] = true
					}
				case abr.ActionPrefetch:
					// Pull future frames while the link is still good.
					s.buffers[u].Add(0.2)
				}
			}
		}

		var rssOffsets []float64
		if len(s.fading) == s.cfg.Users {
			rssOffsets = make([]float64, s.cfg.Users)
			for u := range s.fading {
				rssOffsets[u] = s.fading[u].Step(dt)
			}
		}
		plan, err := s.planner.Plan(s.cfg.Mode, core.FrameInput{
			PerUser:      perUser,
			Requests:     reqs,
			Positions:    positions,
			Bodies:       bodies,
			CustomBeams:  s.cfg.CustomBeams,
			RSSOffsetsDB: rssOffsets,
			Seq:          step,
		})
		if err != nil {
			return q, err
		}
		// Proactive beam switches replace the swept sector rate when the
		// steered reflection beam is stronger.
		for u, r2 := range rateOverride {
			if r2 > plan.Users[u].UnicastRateMbps {
				plan.Users[u].UnicastRateMbps = r2
			}
		}
		// Link emulation: cap throttled users' delivered rates.
		for u, lim := range s.cfg.LinkCapMbps {
			if lim > 0 && plan.Users[u].UnicastRateMbps > lim {
				plan.Users[u].UnicastRateMbps = lim
			}
		}
		// Attribute each user's modeled MAC airtime for this frame: the
		// time the user's requested bytes occupy the medium at their
		// delivered rate. A dead link is clamped to one second so the
		// attribution stays finite (and unmistakably a miss).
		for u := 0; u < s.cfg.Users; u++ {
			bytes := float64(plan.Users[u].RequestBytes)
			if bytes <= 0 {
				continue
			}
			air := time.Second
			if rate := plan.Users[u].UnicastRateMbps; rate > 0 {
				if d := time.Duration(bytes * 8 / (rate * 1e6) * float64(time.Second)); d < air {
					air = d
				}
			}
			s.tr.RecordModeled(step, u, obs.StageAirtime, air)
		}

		// This step's deliverable fraction of a frame per user.
		frameFrac := 1.0
		if plan.PlanTime > 0 {
			frameFrac = plan.Airtime * dt / plan.PlanTime
			if frameFrac > 1 {
				frameFrac = 1
			}
		}
		fpsSum += frameFrac * 30

		// Client render path: decode each user's delivered cells through
		// the shared decode cache. Users fan out on the par pool; the
		// cache's singleflight dedup guarantees each distinct block is
		// decoded once per frame no matter how many viewports overlap.
		if s.cfg.DecodeClouds {
			decodeDone := s.reg.Timer("session.decode").Time()
			perUserPts := make([]int64, s.cfg.Users)
			if err := par.ForEach(context.Background(), s.cfg.Users, func(u int) error {
				defer s.tr.Begin(step, u, obs.StageDecode).End()
				st, fi := perUser[u].Store, perUser[u].Frame
				for _, cr := range reqs[u].Cells {
					blk := st.Block(fi, cr.ID, cr.Stride)
					if blk == nil {
						continue
					}
					dc, err := s.decoder.Decode(blk.Data)
					if err != nil {
						return err
					}
					perUserPts[u] += int64(len(dc.Points))
				}
				return nil
			}); err != nil {
				return q, err
			}
			decodeDone()
			var pts int64
			for _, p := range perUserPts {
				pts += p
			}
			s.reg.Counter("session.decoded_points").Add(pts)
		}

		// Buffers: each user receives frameFrac frames of playback.
		presentSpan := s.tr.Begin(step, obs.PipelineUser, obs.StagePresent)
		for u := 0; u < s.cfg.Users; u++ {
			s.buffers[u].Add(frameFrac * dt)
			s.buffers[u].Drain(dt)
			// Observe the achieved goodput for the predictor.
			got := frameFrac * float64(plan.Users[u].RequestBytes) * 8 / dt / 1e6
			s.bwPred[u].Observe(abr.Sample{T: float64(step) * dt, Mbps: got})
			hint := abr.PHYHint{RateCeilingMbps: plan.Users[u].UnicastRateMbps}
			if futureBlocked[u] && !beamSwitched[u] {
				hint.BlockageExpected = true
				hint.BlockageLossFrac = 0.35
			}
			s.bwPred[u].ObservePHY(hint)
		}

		// Rate adaptation once per second.
		if s.cfg.AdaptQuality && step%30 == 29 {
			s.adaptQuality(plan, &q)
		}

		// Byte accounting.
		for _, g := range plan.Groups {
			if len(g) >= 2 {
				sm := float64(plan.OverlapBytes(g)) * frameFrac
				mcBytes += sm
				totBytes += sm
				for _, m := range g {
					rest := (float64(plan.Users[m].RequestBytes) - float64(plan.OverlapBytes(g))) * frameFrac
					if rest > 0 {
						totBytes += rest
					}
				}
			} else if len(g) == 1 {
				totBytes += float64(plan.Users[g[0]].RequestBytes) * frameFrac
			}
		}
		for u := 0; u < s.cfg.Users; u++ {
			q.AvgQuality += float64(s.quality[u])
		}
		presentSpan.End()
		s.reg.Counter("session.steps").Inc()
		s.reg.Histogram("session.step_ms", nil).
			Observe(float64(time.Since(stepStart)) / float64(time.Millisecond))
	}

	for _, b := range s.buffers {
		q.Stalls += b.Stalls
		q.StallSeconds += b.StallTime
	}
	if steps > 0 {
		q.AvgFPS = fpsSum / float64(steps)
		q.AvgQuality /= float64(steps * s.cfg.Users)
	}
	if totBytes > 0 {
		q.MulticastShare = mcBytes / totBytes
	}
	return q, nil
}

// adaptQuality runs the once-per-second controller pass (rule-based
// cross-layer controller or MPC, per SessionConfig.UseMPC).
func (s *Session) adaptQuality(plan *core.FramePlan, q *QoE) {
	for u := 0; u < s.cfg.Users; u++ {
		demand := codec.BitrateMbps(float64(plan.Users[u].RequestBytes), 30)
		if s.cfg.UseMPC {
			s.adaptQualityMPC(u, demand, q)
			continue
		}
		upQ := s.qualityStep(s.quality[u], true)
		upDemand := 0.0
		if upQ != s.quality[u] {
			upDemand = demand * float64(upQ.Points()) / float64(s.quality[u].Points())
		}
		// With the layered codec the switch itself ships only enhancement
		// layers: the extra rate over current demand, not a full re-send of
		// the finer rung.
		upDelta := 0.0
		if upDemand > demand {
			upDelta = upDemand - demand
		}
		st8 := abr.State{
			PredictedMbps:    s.bwPred[u].Predict(),
			DemandMbps:       demand,
			NextUpDemandMbps: upDemand,
			UpgradeDeltaMbps: upDelta,
			BufferLevel:      s.buffers[u].Level(),
			BufferCapacity:   s.buffers[u].Capacity,
			GroupEfficiency:  1,
		}
		switch s.ctrl.Decide(st8) {
		case abr.ActionQualityDown:
			if nq := s.qualityStep(s.quality[u], false); nq != s.quality[u] {
				s.quality[u] = nq
				q.QualitySwitches++
			}
		case abr.ActionQualityUp:
			if nq := s.qualityStep(s.quality[u], true); nq != s.quality[u] {
				s.quality[u] = nq
				q.QualitySwitches++
			}
		case abr.ActionRegroup:
			q.Regroups++
		}
	}
}

// adaptQualityMPC is the MPC arm of the ablation: build the per-rung
// demand ladder by scaling the observed demand with the point-count
// ratios, then let the lookahead controller pick the rung.
func (s *Session) adaptQualityMPC(u int, demand float64, q *QoE) {
	ladder := pointcloud.Qualities()
	demands := make([]float64, 0, len(ladder))
	avail := make([]pointcloud.Quality, 0, len(ladder))
	cur := 0
	for _, l := range ladder {
		if _, ok := s.stores[l]; !ok {
			continue
		}
		if l == s.quality[u] {
			cur = len(avail)
		}
		demands = append(demands, demand*float64(l.Points())/float64(s.quality[u].Points()))
		avail = append(avail, l)
	}
	pick := s.mpc.Choose(demands, cur, s.bwPred[u].Predict(), s.buffers[u].Level())
	if pick != cur {
		s.quality[u] = avail[pick]
		q.QualitySwitches++
	}
}
