package stream

import (
	"testing"

	"volcast/internal/cell"
	"volcast/internal/codec"
	"volcast/internal/obs"
	"volcast/internal/pointcloud"
	"volcast/internal/trace"
	"volcast/internal/vivo"
)

// A deliberately starved user (link capped at 0.5 Mbps) must blow the
// 33 ms frame budget on every step, and every one of those misses must be
// attributed to the airtime stage — the modeled MAC occupancy is the only
// stage that depends on the link rate, so the attribution is
// deterministic regardless of host speed.
func TestSessionDeadlineAttribution(t *testing.T) {
	video := pointcloud.SynthScene(pointcloud.DefaultSceneConfig(4, 20_000, 1))
	b, ok := video.Bounds()
	if !ok {
		t.Fatal("empty synth video")
	}
	g, err := cell.NewGrid(b, cell.Size50)
	if err != nil {
		t.Fatal(err)
	}
	store, err := vivo.BuildStore(video, g, codec.NewEncoder(codec.DefaultParams()), []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	study := trace.GenerateStudy(60, 1)
	net, err := NewAD()
	if err != nil {
		t.Fatal(err)
	}

	// The tracer is created after the store build, so the trace holds
	// session work only (no build-phase encode spans on these frames).
	tr := obs.New(1 << 14)
	sess, err := NewSession(SessionConfig{
		Users:        2,
		Seconds:      1,
		Mode:         ModeViVo,
		StartQuality: pointcloud.QualityLow,
		Trace:        tr,
		LinkCapMbps:  []float64{0.5, 0}, // starve user 0, leave user 1 alone
	}, map[pointcloud.Quality]*vivo.Store{pointcloud.QualityLow: store}, study, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}

	reports := tr.Analyze()
	if len(reports) == 0 {
		t.Fatal("session recorded no frame reports")
	}
	var u0Frames, u0Misses int
	for _, r := range reports {
		if r.User != 0 {
			continue
		}
		u0Frames++
		if !r.Missed {
			continue
		}
		u0Misses++
		if r.Slowest != "airtime" {
			t.Errorf("frame %d user 0 missed on %q (%.1fms), want airtime: %v",
				r.Frame, r.Slowest, r.SlowestMS, r.Stages)
		}
	}
	if u0Frames == 0 {
		t.Fatal("no frame reports for the starved user")
	}
	if u0Misses == 0 {
		t.Fatal("the 0.5 Mbps user never missed the 33ms deadline")
	}

	qoe := tr.QoE()
	var found bool
	for _, row := range qoe {
		if row.User != 0 {
			continue
		}
		found = true
		if row.Misses != u0Misses {
			t.Errorf("QoE misses = %d, Analyze counted %d", row.Misses, u0Misses)
		}
		if row.TopStage != "airtime" {
			t.Errorf("QoE top stage = %q, want airtime", row.TopStage)
		}
	}
	if !found {
		t.Fatal("QoE has no row for user 0")
	}

	// The trace must cover the core per-frame stages for the starved user.
	stages := map[string]bool{}
	for _, r := range reports {
		if r.User != 0 {
			continue
		}
		for s := range r.Stages {
			stages[s] = true
		}
	}
	for _, want := range []string{"cull", "plan", "airtime", "present"} {
		if !stages[want] {
			t.Errorf("user 0 trace misses stage %q (got %v)", want, stages)
		}
	}
}
