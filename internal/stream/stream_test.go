package stream

import (
	"testing"

	"volcast/internal/blockcache"
	"volcast/internal/cell"
	"volcast/internal/codec"
	"volcast/internal/geom"
	"volcast/internal/metrics"
	"volcast/internal/pointcloud"
	"volcast/internal/trace"
	"volcast/internal/vivo"
)

// testWorld builds a small but real content store + study for fast tests.
func testWorld(t testing.TB, frames, points int) (*vivo.Store, *trace.Study) {
	t.Helper()
	video := pointcloud.SynthScene(pointcloud.SceneConfig{
		Base:    pointcloud.SynthConfig{Frames: frames, FPS: 30, PointsPerFrame: points, Seed: 1, Sway: 1},
		Offsets: trace.StudyPOIs(),
	})
	b, ok := video.Bounds()
	if !ok {
		t.Fatal("no bounds")
	}
	g, err := cell.NewGrid(b, cell.Size50)
	if err != nil {
		t.Fatal(err)
	}
	enc := codec.NewEncoder(codec.DefaultParams())
	store, err := vivo.BuildStore(video, g, enc, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	study := trace.GenerateStudy(frames, 1)
	return store, study
}

func TestNetworkKinds(t *testing.T) {
	ad, err := NewAD()
	if err != nil {
		t.Fatal(err)
	}
	ac, err := NewAC()
	if err != nil {
		t.Fatal(err)
	}
	if ad.Kind.String() != "802.11ad" || ac.Kind.String() != "802.11ac" {
		t.Error("kind names wrong")
	}
	if _, err := ac.UserRSS(geom.V(0, 1.5, 0)); err == nil {
		t.Error("UserRSS on AC did not error")
	}
	// AC unicast rate: calibrated single-user ceiling.
	r := ac.UnicastRate(geom.V(0, 1.5, 0))
	if r < 350 || r > 400 {
		t.Errorf("AC unicast rate %v, want ~374", r)
	}
	// AD unicast rate at a good position: near the transport cap.
	r2 := ad.UnicastRate(geom.V(0, 1.5, -1.5))
	if r2 < 1000 || r2 > 1350 {
		t.Errorf("AD unicast rate %v, want ~1270", r2)
	}
}

func TestMulticastRateCustomBeatsDefaultWhenSeparated(t *testing.T) {
	ad, err := NewAD()
	if err != nil {
		t.Fatal(err)
	}
	pos := []geom.Vec3{geom.V(-2.5, 1.5, 1), geom.V(2.5, 1.5, 1)}
	def := ad.MulticastRate(pos, false)
	cus := ad.MulticastRate(pos, true)
	if cus < def {
		t.Errorf("custom %v < default %v", cus, def)
	}
	if cus <= 0 {
		t.Error("custom rate zero for covered positions")
	}
	if ad.MulticastRate(nil, false) != 0 {
		t.Error("empty group rate not zero")
	}
	ac, _ := NewAC()
	if r := ac.MulticastRate(pos, false); r <= 0 || r > 30 {
		t.Errorf("AC multicast (basic rate) = %v", r)
	}
}

func TestEvalFPSSingleUserFull(t *testing.T) {
	store, study := testWorld(t, 5, 30_000)
	ad, _ := NewAD()
	ev := NewEvaluator(store, study, ad)
	res, err := ev.EvalFPS(EvalConfig{Mode: ModeVanilla, Users: 1, TargetFPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	// 30K points ≈ tiny bitrate: a single ad user must hit the cap.
	if res.FPS < 29.9 {
		t.Errorf("single-user FPS = %v", res.FPS)
	}
	if res.PerUserBytes <= 0 || res.PerUserRateMbps <= 0 {
		t.Errorf("result accounting empty: %+v", res)
	}
	if res.MulticastShare != 0 {
		t.Errorf("vanilla has multicast share %v", res.MulticastShare)
	}
}

func TestEvalFPSDecreasesWithUsers(t *testing.T) {
	store, study := testWorld(t, 5, 260_000)
	ac, _ := NewAC()
	ev := NewEvaluator(store, study, ac)
	var prev = 1e9
	for _, n := range []int{1, 2, 3} {
		res, err := ev.EvalFPS(EvalConfig{Mode: ModeVanilla, Users: n, TargetFPS: 30})
		if err != nil {
			t.Fatal(err)
		}
		if res.FPS > prev+1e-9 {
			t.Errorf("FPS increased with users: %v -> %v at n=%d", prev, res.FPS, n)
		}
		prev = res.FPS
	}
	if prev >= 29 {
		t.Errorf("3 AC users still near 30 FPS (%v) — content too small for the test", prev)
	}
}

func TestEvalFPSViVoBeatsVanilla(t *testing.T) {
	store, study := testWorld(t, 5, 260_000)
	ac, _ := NewAC()
	ev := NewEvaluator(store, study, ac)
	van, err := ev.EvalFPS(EvalConfig{Mode: ModeVanilla, Users: 3, TargetFPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	viv, err := ev.EvalFPS(EvalConfig{Mode: ModeViVo, Users: 3, TargetFPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	if viv.FPS < van.FPS {
		t.Errorf("ViVo FPS %v below vanilla %v", viv.FPS, van.FPS)
	}
	if viv.PerUserBytes >= van.PerUserBytes {
		t.Errorf("ViVo bytes %v not below vanilla %v", viv.PerUserBytes, van.PerUserBytes)
	}
}

func TestEvalFPSMulticastNotWorseThanViVo(t *testing.T) {
	store, study := testWorld(t, 5, 120_000)
	ad, _ := NewAD()
	ev := NewEvaluator(store, study, ad)
	viv, err := ev.EvalFPS(EvalConfig{Mode: ModeViVo, Users: 6, TargetFPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ev.EvalFPS(EvalConfig{Mode: ModeMulticast, Users: 6, CustomBeams: true, TargetFPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	if mc.FPS < viv.FPS-1e-9 {
		t.Errorf("multicast FPS %v below ViVo %v", mc.FPS, viv.FPS)
	}
}

func TestEvalFPSValidation(t *testing.T) {
	store, study := testWorld(t, 2, 5_000)
	ad, _ := NewAD()
	ev := NewEvaluator(store, study, ad)
	if _, err := ev.EvalFPS(EvalConfig{Users: 0}); err == nil {
		t.Error("0 users accepted")
	}
	if _, err := ev.EvalFPS(EvalConfig{Users: 99}); err == nil {
		t.Error("too many users accepted")
	}
}

func TestSessionRunsAndReportsQoE(t *testing.T) {
	store, study := testWorld(t, 10, 30_000)
	ad, _ := NewAD()
	stores := map[pointcloud.Quality]*vivo.Store{pointcloud.QualityLow: store}
	sess, err := NewSession(SessionConfig{
		Users: 3, Seconds: 1, Mode: ModeMulticast, CustomBeams: true,
		StartQuality: pointcloud.QualityLow,
	}, stores, study, ad)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if q.AvgFPS <= 0 || q.AvgFPS > 30 {
		t.Errorf("AvgFPS = %v", q.AvgFPS)
	}
	if q.AvgQuality != 0 {
		t.Errorf("AvgQuality = %v with a single rung", q.AvgQuality)
	}
}

func TestSessionValidation(t *testing.T) {
	store, study := testWorld(t, 2, 5_000)
	ad, _ := NewAD()
	stores := map[pointcloud.Quality]*vivo.Store{pointcloud.QualityLow: store}
	if _, err := NewSession(SessionConfig{Users: 0, StartQuality: pointcloud.QualityLow}, stores, study, ad); err == nil {
		t.Error("0 users accepted")
	}
	if _, err := NewSession(SessionConfig{Users: 99, StartQuality: pointcloud.QualityLow}, stores, study, ad); err == nil {
		t.Error("99 users accepted")
	}
	if _, err := NewSession(SessionConfig{Users: 1, StartQuality: pointcloud.QualityHigh}, stores, study, ad); err == nil {
		t.Error("missing start quality accepted")
	}
	if _, err := NewSession(SessionConfig{Users: 1, StartQuality: pointcloud.QualityLow}, nil, study, ad); err == nil {
		t.Error("no stores accepted")
	}
}

func TestSessionPredictiveBeamSwitches(t *testing.T) {
	// A crowded session on mmWave: the predictive pipeline must engage
	// at least occasionally (beam switches or prefetches shift QoE).
	store, study := testWorld(t, 30, 20_000)
	ad, _ := NewAD()
	stores := map[pointcloud.Quality]*vivo.Store{pointcloud.QualityLow: store}
	sess, err := NewSession(SessionConfig{
		Users: 6, Seconds: 1, Mode: ModeViVo, Predictive: true,
		StartQuality: pointcloud.QualityLow,
	}, stores, study, ad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	// No assertion on the count (depends on geometry); the test guards
	// the predictive path against panics and deadlocks.
}

func TestSessionDecodeCacheSharedAcrossUsers(t *testing.T) {
	// Two users watching the same scene overlap heavily (the paper's
	// premise); with DecodeClouds on, the second user's overlapping cells
	// must come out of the shared decode cache, so the hit counter climbs.
	defer blockcache.SetBudgetMB(-1)
	blockcache.SetBudgetMB(64)
	reg := metrics.Default()
	hits0 := reg.Counter("blockcache.decode.hits").Value()
	misses0 := reg.Counter("blockcache.decode.misses").Value()

	store, study := testWorld(t, 10, 30_000)
	ad, _ := NewAD()
	stores := map[pointcloud.Quality]*vivo.Store{pointcloud.QualityLow: store}
	sess, err := NewSession(SessionConfig{
		Users: 2, Seconds: 1, Mode: ModeViVo, DecodeClouds: true,
		StartQuality: pointcloud.QualityLow,
	}, stores, study, ad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	hits := reg.Counter("blockcache.decode.hits").Value() - hits0
	misses := reg.Counter("blockcache.decode.misses").Value() - misses0
	if misses == 0 {
		t.Fatal("no decode-cache misses: DecodeClouds did not decode anything")
	}
	if hits == 0 {
		t.Error("no decode-cache hits across 2 overlapping users")
	}
	if pts := reg.Counter("session.decoded_points").Value(); pts == 0 {
		t.Error("no decoded points accounted")
	}
}

func TestModeString(t *testing.T) {
	if ModeVanilla.String() != "vanilla" || ModeViVo.String() != "vivo" || ModeMulticast.String() != "multicast" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode empty")
	}
}

func TestSessionMPCAdaptsQuality(t *testing.T) {
	// Two quality rungs and a link that cannot carry the upper one for 4
	// users: the MPC controller must keep/steer users toward the rung
	// that avoids stalls, and the rule-based controller must too; both
	// paths must run without error.
	low, study := testWorld(t, 10, 40_000)
	high, _ := testWorld(t, 10, 80_000)
	stores := map[pointcloud.Quality]*vivo.Store{
		pointcloud.QualityLow:    low,
		pointcloud.QualityMedium: high,
	}
	ad, _ := NewAD()
	for _, useMPC := range []bool{false, true} {
		sess, err := NewSession(SessionConfig{
			Users: 4, Seconds: 2, Mode: ModeViVo,
			StartQuality: pointcloud.QualityMedium,
			AdaptQuality: true, UseMPC: useMPC,
		}, stores, study, ad)
		if err != nil {
			t.Fatal(err)
		}
		q, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if q.AvgFPS <= 0 {
			t.Errorf("useMPC=%v: AvgFPS %v", useMPC, q.AvgFPS)
		}
		if q.AvgQuality < 0 || q.AvgQuality > 2 {
			t.Errorf("useMPC=%v: AvgQuality %v", useMPC, q.AvgQuality)
		}
	}
}

func TestSessionFadingDeterministicAndDistinct(t *testing.T) {
	store, study := testWorld(t, 10, 30_000)
	stores := map[pointcloud.Quality]*vivo.Store{pointcloud.QualityLow: store}
	run := func(fading bool, seed int64) QoE {
		ad, err := NewAD()
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(SessionConfig{
			Users: 3, Seconds: 1, Mode: ModeMulticast,
			StartQuality: pointcloud.QualityLow,
			Fading:       fading, Seed: seed,
		}, stores, study, ad)
		if err != nil {
			t.Fatal(err)
		}
		q, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	// Determinism: identical config+seed → identical QoE.
	a := run(true, 5)
	b := run(true, 5)
	if a != b {
		t.Errorf("fading session not deterministic: %+v vs %+v", a, b)
	}
	// The no-fading run is also deterministic.
	c := run(false, 5)
	d := run(false, 5)
	if c != d {
		t.Errorf("session not deterministic: %+v vs %+v", c, d)
	}
}
