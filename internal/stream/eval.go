// Package stream is the end-to-end multi-user streaming engine: it binds
// the content store (encoded cells), the visibility pipeline (ViVo), the
// viewport traces and the core cross-layer planner into frame-level
// evaluations (the Table 1 reproduction) and a time-stepped session
// simulator with buffers, blockage and QoE accounting (the
// research-agenda system). The WLAN models and the frame planner
// themselves live in internal/core.
package stream

import (
	"context"
	"fmt"
	"time"

	"volcast/internal/blockcache"
	"volcast/internal/codec"
	"volcast/internal/core"
	"volcast/internal/geom"
	"volcast/internal/metrics"
	"volcast/internal/obs"
	"volcast/internal/par"
	"volcast/internal/phy"
	"volcast/internal/trace"
	"volcast/internal/vivo"
)

// Re-exported core types: the stream API is the main entry point for
// callers, the mechanism lives in internal/core.
type (
	// Mode selects the delivery pipeline.
	Mode = core.Mode
	// Network is a WLAN model (PHY + MAC, beams on 802.11ad).
	Network = core.Network
	// NetworkKind selects the WLAN technology.
	NetworkKind = core.NetworkKind
)

// Delivery modes and network kinds (see internal/core).
const (
	ModeVanilla   = core.ModeVanilla
	ModeViVo      = core.ModeViVo
	ModeMulticast = core.ModeMulticast

	NetAC = core.NetAC
	NetAD = core.NetAD
)

// NewAD assembles the calibrated 802.11ad mmWave network.
func NewAD() (*Network, error) { return core.NewAD() }

// NewAC assembles the calibrated 802.11ac network.
func NewAC() (*Network, error) { return core.NewAC() }

// EvalConfig configures an offline frame-rate evaluation.
type EvalConfig struct {
	// Mode is the delivery pipeline.
	Mode Mode
	// Users is the number of concurrent viewers (trace users 0..Users-1).
	Users int
	// Frames is the evaluation window (0 = all stored frames).
	Frames int
	// TargetFPS caps the reported rate (the content rate, 30).
	TargetFPS float64
	// CustomBeams enables multi-lobe beams for multicast groups.
	CustomBeams bool
	// DecodeRate is the client decode capability (zero = paper default).
	DecodeRate codec.DecodeRate
	// DecodeClouds makes the evaluation decode every requested cell per
	// user through the shared content-addressed decode cache (off, the
	// evaluation only accounts bytes — the paper's methodology).
	DecodeClouds bool
}

// Result summarizes an evaluation.
type Result struct {
	// FPS is the mean achievable frame rate over the window.
	FPS float64
	// PerUserBytes is the mean requested bytes per user per frame.
	PerUserBytes float64
	// MulticastShare is the fraction of delivered bytes sent multicast.
	MulticastShare float64
	// PerUserRateMbps is the mean effective per-user delivery rate.
	PerUserRateMbps float64
}

// Evaluator owns the pieces needed to evaluate frame rates for a set of
// users on one network.
type Evaluator struct {
	Store *vivo.Store
	Vis   *vivo.Visibility
	Study *trace.Study
	Net   *Network
	// Trace receives per-frame, per-user stage spans (set by NewEvaluator
	// to the process tracer; nil disables tracing).
	Trace *obs.Tracer

	planner *core.Planner
	decoder codec.Decoder
}

// NewEvaluator wires an evaluator; the visibility pipeline is built on
// the store's grid with default ViVo parameters.
func NewEvaluator(store *vivo.Store, study *trace.Study, net *Network) *Evaluator {
	pl := core.NewPlanner(net)
	pl.Metrics = metrics.Default()
	pl.Trace = obs.Default()
	return &Evaluator{
		Store:   store,
		Vis:     vivo.New(store.Grid(), vivo.DefaultParams()),
		Study:   study,
		Net:     net,
		Trace:   pl.Trace,
		planner: pl,
		decoder: codec.Decoder{Cache: blockcache.Cells()},
	}
}

// userRequest computes user u's fetch request for frame f under the mode.
func (e *Evaluator) userRequest(mode Mode, f int, pose geom.Pose) vivo.Request {
	occ := e.Store.Frame(f).Occupied
	if mode == ModeVanilla {
		return vivo.VanillaRequest(occ)
	}
	return e.Vis.Request(occ, pose)
}

// EvalFPS runs the offline evaluation: for each frame in the window it
// computes each user's request, plans the delivery schedule (unicast or
// multicast) via the core planner, and converts airtime into the
// achievable frame rate, bounded by the client decode capability. The
// reported FPS is the mean over the window, capped at TargetFPS — the
// measurement methodology of the paper's Table 1.
func (e *Evaluator) EvalFPS(cfg EvalConfig) (Result, error) {
	if cfg.Users < 1 {
		return Result{}, fmt.Errorf("stream: need at least 1 user")
	}
	if cfg.Users > e.Study.Users() {
		return Result{}, fmt.Errorf("stream: %d users requested, %d traces", cfg.Users, e.Study.Users())
	}
	if cfg.TargetFPS <= 0 {
		cfg.TargetFPS = 30
	}
	if cfg.DecodeRate.PointsPerSecond <= 0 {
		cfg.DecodeRate = codec.DefaultDecodeRate()
	}
	frames := cfg.Frames
	if frames <= 0 || frames > e.Store.NumFrames() {
		frames = e.Store.NumFrames()
	}

	var sumFPS, sumBytes, sumRate float64
	var mcBytes, totBytes float64
	for f := 0; f < frames; f++ {
		positions := make([]geom.Vec3, cfg.Users)
		reqs := make([]vivo.Request, cfg.Users)
		bodies := make([]phy.Body, cfg.Users)
		points := e.Store.PointsOracle(f)
		// Per-user frustum culling + visibility fans out on the par pool
		// (the visibility pipeline only reads the grid and occupancy);
		// slots fill by user index, then the max reduces sequentially.
		userPoints := make([]int, cfg.Users)
		if err := par.ForEach(context.Background(), cfg.Users, func(u int) error {
			cull := e.Trace.Begin(f, u, obs.StageCull)
			pose := e.Study.Traces[u].PoseAt(f)
			positions[u] = pose.Pos
			bodies[u] = phy.DefaultBody(pose.Pos)
			reqs[u] = e.userRequest(cfg.Mode, f, pose)
			userPoints[u] = reqs[u].Points(points)
			cull.End()
			if cfg.DecodeClouds {
				defer e.Trace.Begin(f, u, obs.StageDecode).End()
				// Client render path: the shared cache's singleflight
				// dedup decodes each distinct block once per frame even
				// though every overlapping user requests it.
				for _, cr := range reqs[u].Cells {
					blk := e.Store.Block(f, cr.ID, cr.Stride)
					if blk == nil {
						continue
					}
					if _, err := e.decoder.Decode(blk.Data); err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
			return Result{}, err
		}
		maxPoints := 0
		for _, p := range userPoints {
			if p > maxPoints {
				maxPoints = p
			}
		}
		// The planner mutates the network's blockage state, so planning
		// itself stays sequential.
		plan, err := e.planner.Plan(cfg.Mode, core.FrameInput{
			Store: e.Store, Frame: f,
			Requests: reqs, Positions: positions, Bodies: bodies,
			CustomBeams: cfg.CustomBeams,
			Seq:         f,
		})
		if err != nil {
			return Result{}, err
		}
		// Attribute each user's share of the schedule as modeled airtime
		// (bytes over the planned unicast rate, the paper's Tm model for
		// singletons; good enough for per-frame attribution).
		for u := range plan.Users {
			bytes := float64(plan.Users[u].RequestBytes)
			rate := plan.Users[u].UnicastRateMbps
			if bytes <= 0 || rate <= 0 {
				continue
			}
			air := time.Duration(bytes * 8 / (rate * 1e6) * float64(time.Second))
			if air > time.Second {
				air = time.Second
			}
			e.Trace.RecordModeled(f, u, obs.StageAirtime, air)
		}
		fps := plan.AchievableFPS(cfg.TargetFPS)
		if d := cfg.DecodeRate.MaxFPS(maxPoints, cfg.TargetFPS); d < fps {
			fps = d
		}
		sumFPS += fps

		for _, u := range plan.Users {
			sumBytes += float64(u.RequestBytes)
			sumRate += u.UnicastRateMbps
		}
		for _, g := range plan.Groups {
			if len(g) >= 2 {
				sm := float64(plan.OverlapBytes(g))
				mcBytes += sm
				totBytes += sm
				for _, m := range g {
					if rest := float64(plan.Users[m].RequestBytes) - sm; rest > 0 {
						totBytes += rest
					}
				}
			} else if len(g) == 1 {
				totBytes += float64(plan.Users[g[0]].RequestBytes)
			}
		}
	}
	n := float64(frames)
	res := Result{
		FPS:             sumFPS / n,
		PerUserBytes:    sumBytes / (n * float64(cfg.Users)),
		PerUserRateMbps: sumRate / (n * float64(cfg.Users)),
	}
	if totBytes > 0 {
		res.MulticastShare = mcBytes / totBytes
	}
	return res, nil
}
