// Package multiap implements the paper's multi-AP coordination extension
// (§5): several mmWave APs on different walls serve disjoint client sets
// concurrently, exploiting the directionality of 60 GHz beams for spatial
// reuse. The package provides max-RSS association, per-AP frame planning
// (via the core planner), and a pairwise signal-to-interference check
// that decides whether the APs' service periods can overlap in time or
// must be serialized.
package multiap

import (
	"fmt"
	"math"

	"volcast/internal/beam"
	"volcast/internal/core"
	"volcast/internal/geom"
	"volcast/internal/mac"
	"volcast/internal/phy"
	"volcast/internal/vivo"
)

// System is a set of coordinated mmWave APs sharing one room.
type System struct {
	// APs are the per-AP network models (all 802.11ad).
	APs []*core.Network
	// MinSIRdB is the signal-to-interference margin required to run two
	// APs' transmissions concurrently (typical directional links tolerate
	// interference ~10-15 dB below signal).
	MinSIRdB float64

	channel *phy.Channel
}

// New places n APs (n in 1..4) on distinct walls of the default room,
// boresight pointing inward, all sharing one channel (so one blocker set
// affects every AP's rays).
func New(n int) (*System, error) {
	if n < 1 || n > 4 {
		return nil, fmt.Errorf("multiap: %d APs unsupported (1..4)", n)
	}
	room := phy.DefaultRoom()
	ch := phy.NewChannel(room)
	b := room.Bounds
	mounts := []struct {
		pos geom.Vec3
		rot geom.Quat
	}{
		{geom.V(0, 2.5, b.Min.Z), geom.QuatIdent()},                            // front wall, faces +Z
		{geom.V(0, 2.5, b.Max.Z), geom.AxisAngle(geom.V(0, 1, 0), math.Pi)},    // back wall, faces -Z
		{geom.V(b.Min.X, 2.5, 0), geom.AxisAngle(geom.V(0, 1, 0), math.Pi/2)},  // left wall, faces +X
		{geom.V(b.Max.X, 2.5, 0), geom.AxisAngle(geom.V(0, 1, 0), -math.Pi/2)}, // right wall, faces -X
	}
	sys := &System{MinSIRdB: 12, channel: ch}
	for i := 0; i < n; i++ {
		arr, err := phy.NewArray(8, 4, mounts[i].pos, mounts[i].rot)
		if err != nil {
			return nil, err
		}
		radio := phy.NewRadio(arr, ch)
		cb := phy.DefaultCodebook(arr, phy.DefaultCodebookConfig())
		sched, err := mac.NewScheduler(mac.DefaultAD())
		if err != nil {
			return nil, err
		}
		sys.APs = append(sys.APs, &core.Network{
			Kind:     core.NetAD,
			MAC:      sched,
			Radio:    radio,
			Codebook: cb,
			Designer: beam.NewDesigner(radio, cb),
		})
	}
	return sys, nil
}

// SetBodies updates the shared blockage set.
func (s *System) SetBodies(bodies []phy.Body) { s.channel.SetBodies(bodies) }

// Associate assigns each user position to the AP giving it the highest
// swept-sector RSS (the standard max-RSS association rule).
func (s *System) Associate(positions []geom.Vec3) []int {
	out := make([]int, len(positions))
	for u, p := range positions {
		best, bestRSS := 0, math.Inf(-1)
		for i, ap := range s.APs {
			_, rss := ap.Radio.SweepBestSector(ap.Codebook, p)
			if rss > bestRSS {
				best, bestRSS = i, rss
			}
		}
		out[u] = best
	}
	return out
}

// Plan is the coordinated schedule of one frame.
type Plan struct {
	// Assignment maps user index → AP index.
	Assignment []int
	// PerAP holds each AP's frame plan over its own users (nil when the
	// AP has no users this frame).
	PerAP []*core.FramePlan
	// Concurrent reports whether the SIR check allowed the APs to
	// transmit simultaneously.
	Concurrent bool
	// MinSIRdB is the worst pairwise signal-to-interference observed.
	MinSIRdB float64
	// FPS is the achievable frame rate of the coordinated schedule.
	FPS float64
}

// PlanFrame builds per-AP plans for the users and decides concurrency.
// All users read from one store/frame (extend with core.FrameInput's
// PerUser for mixed-quality audiences).
func (s *System) PlanFrame(mode core.Mode, store *vivo.Store, frame int, reqs []vivo.Request, positions []geom.Vec3, bodies []phy.Body, customBeams bool, capFPS float64) (*Plan, error) {
	if len(reqs) != len(positions) {
		return nil, fmt.Errorf("multiap: %d requests, %d positions", len(reqs), len(positions))
	}
	s.SetBodies(bodies)
	assign := s.Associate(positions)

	plan := &Plan{Assignment: assign, PerAP: make([]*core.FramePlan, len(s.APs))}
	perAPUsers := make([][]int, len(s.APs))
	for u, ap := range assign {
		perAPUsers[ap] = append(perAPUsers[ap], u)
	}
	var planTimes []float64
	for i, users := range perAPUsers {
		if len(users) == 0 {
			continue
		}
		subReqs := make([]vivo.Request, len(users))
		subPos := make([]geom.Vec3, len(users))
		for j, u := range users {
			subReqs[j] = reqs[u]
			subPos[j] = positions[u]
		}
		p, err := core.NewPlanner(s.APs[i]).Plan(mode, core.FrameInput{
			Store: store, Frame: frame,
			Requests: subReqs, Positions: subPos, Bodies: bodies,
			CustomBeams: customBeams,
		})
		if err != nil {
			return nil, err
		}
		plan.PerAP[i] = p
		planTimes = append(planTimes, p.PlanTime/p.Airtime)
	}
	if len(planTimes) == 0 {
		plan.FPS = capFPS
		return plan, nil
	}

	plan.MinSIRdB = s.worstSIR(assign, positions)
	plan.Concurrent = len(planTimes) > 1 && plan.MinSIRdB >= s.MinSIRdB

	if plan.Concurrent || len(planTimes) == 1 {
		// Spatial reuse: the slowest AP bounds the frame rate.
		worst := 0.0
		for _, t := range planTimes {
			if t > worst {
				worst = t
			}
		}
		plan.FPS = capFPSAt(worst, capFPS)
	} else {
		// Interference too high: serialize the APs' service periods.
		total := 0.0
		for _, t := range planTimes {
			total += t
		}
		plan.FPS = capFPSAt(total, capFPS)
	}
	return plan, nil
}

func capFPSAt(planTime, capFPS float64) float64 {
	if planTime <= 0 {
		return capFPS
	}
	f := 1 / planTime
	if f > capFPS {
		return capFPS
	}
	return f
}

// worstSIR returns the minimum signal-to-interference ratio over all
// users, where the interference at user u is the strongest signal any
// *other* AP would leak onto u while serving its own users (beams steered
// at its own users, worst case).
func (s *System) worstSIR(assign []int, positions []geom.Vec3) float64 {
	worst := math.Inf(1)
	for u, ap := range assign {
		// Serving signal.
		_, sig := s.APs[ap].Radio.SweepBestSector(s.APs[ap].Codebook, positions[u])
		// Strongest leak from other APs' beams toward their users.
		interf := math.Inf(-1)
		for v, ap2 := range assign {
			if ap2 == ap {
				continue
			}
			w := s.APs[ap2].Radio.Array.SteerTo(
				positions[v].Sub(s.APs[ap2].Radio.Array.Pos).Norm())
			if leak := s.APs[ap2].Radio.RSS(w, positions[u]); leak > interf {
				interf = leak
			}
		}
		if math.IsInf(interf, -1) {
			continue // no other active AP
		}
		if sir := sig - interf; sir < worst {
			worst = sir
		}
	}
	if math.IsInf(worst, 1) {
		return 200 // single AP: no interference
	}
	return worst
}
