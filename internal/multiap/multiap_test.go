package multiap

import (
	"testing"

	"volcast/internal/cell"
	"volcast/internal/codec"
	"volcast/internal/core"
	"volcast/internal/geom"
	"volcast/internal/phy"
	"volcast/internal/pointcloud"
	"volcast/internal/vivo"
)

func testStore(t testing.TB, points int) *vivo.Store {
	t.Helper()
	video := pointcloud.SynthVideo(pointcloud.SynthConfig{
		Frames: 2, FPS: 30, PointsPerFrame: points, Seed: 1, Sway: 1,
	})
	b, _ := video.Bounds()
	g, err := cell.NewGrid(b, cell.Size50)
	if err != nil {
		t.Fatal(err)
	}
	st, err := vivo.BuildStore(video, g, codec.NewEncoder(codec.DefaultParams()), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func requestsFor(t testing.TB, st *vivo.Store, positions []geom.Vec3) []vivo.Request {
	t.Helper()
	vis := vivo.New(st.Grid(), vivo.DefaultParams())
	occ := st.Frame(0).Occupied
	reqs := make([]vivo.Request, len(positions))
	for i, p := range positions {
		look := geom.LookRotation(geom.V(0, 1.2, 0).Sub(p), geom.V(0, 1, 0))
		reqs[i] = vis.Request(occ, geom.Pose{Pos: p, Rot: look})
	}
	return reqs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("0 APs accepted")
	}
	if _, err := New(5); err == nil {
		t.Error("5 APs accepted")
	}
	for n := 1; n <= 4; n++ {
		sys, err := New(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(sys.APs) != n {
			t.Fatalf("n=%d: %d APs", n, len(sys.APs))
		}
	}
}

func TestAssociatePicksNearestWall(t *testing.T) {
	sys, err := New(2) // front wall (z=-4) and back wall (z=+4)
	if err != nil {
		t.Fatal(err)
	}
	positions := []geom.Vec3{
		geom.V(0, 1.5, -2.5), // near front AP
		geom.V(0, 1.5, 2.5),  // near back AP
	}
	assign := sys.Associate(positions)
	if assign[0] != 0 || assign[1] != 1 {
		t.Errorf("assignment = %v, want [0 1]", assign)
	}
}

func TestTwoAPsEnableSpatialReuse(t *testing.T) {
	st := testStore(t, 60_000)
	// Users split across the room, watching the content at the origin.
	positions := []geom.Vec3{
		geom.V(-1, 1.5, -2.5), geom.V(1, 1.5, -2.5), // front pair
		geom.V(-1, 1.5, 2.5), geom.V(1, 1.5, 2.5), // back pair
	}
	reqs := requestsFor(t, st, positions)

	one, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := one.PlanFrame(core.ModeViVo, st, 0, reqs, positions, nil, false, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	two, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := two.PlanFrame(core.ModeViVo, st, 0, reqs, positions, nil, false, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Concurrent {
		t.Errorf("opposite-wall APs not concurrent (SIR %.1f dB)", p2.MinSIRdB)
	}
	if p2.FPS <= p1.FPS {
		t.Errorf("2 APs (%.1f FPS) not faster than 1 AP (%.1f FPS)", p2.FPS, p1.FPS)
	}
	// Roughly a 2x capacity win when the split is even.
	if p2.FPS < p1.FPS*1.5 {
		t.Errorf("spatial reuse gain too small: %.1f vs %.1f", p2.FPS, p1.FPS)
	}
}

func TestSingleAPNoInterference(t *testing.T) {
	st := testStore(t, 20_000)
	positions := []geom.Vec3{geom.V(0, 1.5, -2)}
	reqs := requestsFor(t, st, positions)
	sys, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.PlanFrame(core.ModeViVo, st, 0, reqs, positions, nil, false, 30)
	if err != nil {
		t.Fatal(err)
	}
	if p.Concurrent {
		t.Error("single AP flagged concurrent")
	}
	if p.MinSIRdB < 100 {
		t.Errorf("single AP SIR = %v, want sentinel", p.MinSIRdB)
	}
	if p.FPS <= 0 || p.FPS > 30 {
		t.Errorf("FPS = %v", p.FPS)
	}
}

func TestPlanFrameValidation(t *testing.T) {
	st := testStore(t, 5_000)
	sys, _ := New(1)
	if _, err := sys.PlanFrame(core.ModeViVo, st, 0, make([]vivo.Request, 2), make([]geom.Vec3, 1), nil, false, 30); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// No users: plan caps at the target.
	p, err := sys.PlanFrame(core.ModeViVo, st, 0, nil, nil, nil, false, 30)
	if err != nil {
		t.Fatal(err)
	}
	if p.FPS != 30 {
		t.Errorf("empty plan FPS = %v", p.FPS)
	}
}

func TestBlockageAffectsSharedChannel(t *testing.T) {
	st := testStore(t, 20_000)
	positions := []geom.Vec3{geom.V(1.5, 1.5, 2.0)}
	reqs := requestsFor(t, st, positions)
	sys, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	clear, err := sys.PlanFrame(core.ModeViVo, st, 0, reqs, positions, nil, false, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	blocker := []phy.Body{phy.DefaultBody(geom.V(1.125, 0, 0.5))}
	blocked, err := sys.PlanFrame(core.ModeViVo, st, 0, reqs, positions, blocker, false, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.FPS >= clear.FPS {
		t.Errorf("blockage did not slow the plan: %.1f vs %.1f", blocked.FPS, clear.FPS)
	}
}
