package phy

// MCS is one modulation-and-coding-scheme entry: the minimum RSS required
// to sustain it and the PHY rate it delivers.
type MCS struct {
	// Index is the standard's MCS index.
	Index int
	// SensitivityDBm is the receiver sensitivity (minimum RSS).
	SensitivityDBm float64
	// RateMbps is the PHY data rate.
	RateMbps float64
}

// AD_SC_MCS is the 802.11ad single-carrier MCS table (IEEE 802.11ad-2012
// Table 21-3 receiver sensitivities, monotonized), the table the paper's
// QCA9500 radios negotiate from. MCS1 at −68 dBm delivers 385 Mbps — the
// paper's "RSS of −68 dBm … approximately 384 Mbps" anchor point.
var AD_SC_MCS = []MCS{
	{1, -68, 385},
	{2, -66, 770},
	{3, -65, 962.5},
	{4, -64, 1155},
	{5, -63, 1251.25},
	{6, -62, 1540},
	{7, -61, 1925},
	{8, -60, 2310},
	{9, -59, 2502.5},
	{10, -55, 3080},
	{11, -54, 3850},
	{12, -53, 4620},
}

// AC_VHT80_MCS is a single-stream 802.11ac VHT 80 MHz rate table with
// typical sensitivities, used by the 802.11ac baseline experiments.
var AC_VHT80_MCS = []MCS{
	{0, -82, 29.3},
	{1, -79, 58.5},
	{2, -77, 87.8},
	{3, -74, 117},
	{4, -70, 175.5},
	{5, -66, 234},
	{6, -65, 263.3},
	{7, -64, 292.5},
	{8, -59, 351},
	{9, -57, 390},
}

// SelectMCS returns the highest entry of the table whose sensitivity the
// RSS meets, and false when the link cannot sustain even the lowest MCS
// (outage).
func SelectMCS(table []MCS, rssDBm float64) (MCS, bool) {
	var best MCS
	ok := false
	for _, m := range table {
		if rssDBm >= m.SensitivityDBm {
			best, ok = m, true
		}
	}
	return best, ok
}

// RateForRSS is shorthand for the PHY rate at the given RSS, 0 on outage.
func RateForRSS(table []MCS, rssDBm float64) float64 {
	m, ok := SelectMCS(table, rssDBm)
	if !ok {
		return 0
	}
	return m.RateMbps
}

// CommonMCS returns the highest MCS every receiver in the group can
// decode — the reliable multicast rate rule: the group rate is limited by
// its weakest member.
func CommonMCS(table []MCS, rssDBm []float64) (MCS, bool) {
	if len(rssDBm) == 0 {
		return MCS{}, false
	}
	min := rssDBm[0]
	for _, v := range rssDBm[1:] {
		if v < min {
			min = v
		}
	}
	return SelectMCS(table, min)
}
