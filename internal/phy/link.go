package phy

import (
	"math"

	"volcast/internal/geom"
)

// LinkBudget holds the fixed terms of the 60 GHz link equation. The
// defaults are calibrated so that trace-scale viewing positions (1–5 m)
// with the default codebook land in the paper's measured RSS band
// (−78…−54 dBm, Fig. 3b/3d).
type LinkBudget struct {
	// TxPowerDBm is the conducted transmit power fed to the array.
	TxPowerDBm float64
	// RxGainDBi is the client's quasi-omni receive gain.
	RxGainDBi float64
	// NoiseFloorDBm is thermal noise + noise figure over the 1.76 GHz
	// 802.11ad channel (≈ −174 + 10·log10(1.76e9) + 7).
	NoiseFloorDBm float64
}

// DefaultLinkBudget returns the calibrated budget.
func DefaultLinkBudget() LinkBudget {
	return LinkBudget{TxPowerDBm: 8, RxGainDBi: 0, NoiseFloorDBm: -74.5}
}

// Radio bundles an array, a channel model and a link budget: everything
// needed to predict the RSS a client at some position sees for a given
// transmit AWV.
type Radio struct {
	Array   *Array
	Channel *Channel
	Budget  LinkBudget
}

// NewRadio assembles a radio with the default budget.
func NewRadio(a *Array, ch *Channel) *Radio {
	return &Radio{Array: a, Channel: ch, Budget: DefaultLinkBudget()}
}

// RSS returns the received signal strength (dBm) at rx for transmit
// weights w, summing power over all propagation paths (LOS + first-order
// reflections), with blockage applied.
func (r *Radio) RSS(w AWV, rx geom.Vec3) float64 {
	paths := r.Channel.Paths(r.Array.Pos, rx)
	var linear float64
	for _, p := range paths {
		g := r.Array.GainDBi(w, p.Dir)
		dbm := r.Budget.TxPowerDBm + g + r.Budget.RxGainDBi - FSPL(p.Length) - p.ExtraLossDB
		linear += math.Pow(10, dbm/10)
	}
	if linear <= 0 {
		return -200
	}
	return 10 * math.Log10(linear)
}

// RSSLOSOnly is RSS restricted to the line-of-sight path — used to show
// how much the reflection paths contribute under blockage.
func (r *Radio) RSSLOSOnly(w AWV, rx geom.Vec3) float64 {
	paths := r.Channel.Paths(r.Array.Pos, rx)
	for _, p := range paths {
		if p.Reflections == 0 {
			dbm := r.Budget.TxPowerDBm + r.Array.GainDBi(w, p.Dir) + r.Budget.RxGainDBi -
				FSPL(p.Length) - p.ExtraLossDB
			return dbm
		}
	}
	return -200
}

// SweepBestSector performs a sector-level sweep: it returns the codebook
// sector delivering the highest actual RSS at rx (through whatever paths
// exist, including reflections around a blocked LOS) and that RSS. This
// is what 802.11ad SLS training measures, and it is why real links
// survive blockage by falling back to reflected paths.
func (r *Radio) SweepBestSector(cb *Codebook, rx geom.Vec3) (Sector, float64) {
	best := Sector{Index: -1}
	bestRSS := math.Inf(-1)
	for _, s := range cb.Sectors {
		if v := r.RSS(s.W, rx); v > bestRSS {
			best, bestRSS = s, v
		}
	}
	return best, bestRSS
}

// SNR returns the signal-to-noise ratio in dB for the given RSS.
func (r *Radio) SNR(rssDBm float64) float64 { return rssDBm - r.Budget.NoiseFloorDBm }

// BestPathDir returns the departure direction of the strongest usable
// path (lowest loss per meter), preferring unblocked paths. This is what
// proactive beam switching steers to when the LOS is predicted blocked.
func (r *Radio) BestPathDir(rx geom.Vec3) (geom.Vec3, bool) {
	paths := r.Channel.Paths(r.Array.Pos, rx)
	bestScore := math.Inf(-1)
	var bestDir geom.Vec3
	found := false
	for _, p := range paths {
		// Score = the RSS this path alone would deliver under an ideally
		// steered beam (array gain is direction-independent at peak).
		score := -FSPL(p.Length) - p.ExtraLossDB
		if score > bestScore {
			bestScore, bestDir, found = score, p.Dir, true
		}
	}
	return bestDir, found
}
