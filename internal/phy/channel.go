package phy

import (
	"math"
	"math/rand"

	"volcast/internal/geom"
)

// Room is the shoebox environment the ray tracer works in: axis-aligned
// walls, floor and ceiling, each reflecting 60 GHz energy with a loss.
type Room struct {
	// Bounds is the interior volume.
	Bounds geom.AABB
	// WallLossDB is the reflection loss of walls/ceiling/floor at 60 GHz
	// (typical painted drywall: 5–10 dB).
	WallLossDB float64
}

// DefaultRoom returns the lab-sized room used by the experiments:
// 10 m × 8 m footprint, 3 m ceiling.
func DefaultRoom() Room {
	return Room{
		Bounds:     geom.NewAABB(geom.V(-5, 0, -4), geom.V(5, 3, 4)),
		WallLossDB: 8,
	}
}

// Body is a human blockage model: a vertical cylinder. mmWave links whose
// path passes through a body suffer tens of dB of loss — the blockage
// problem the paper's cross-layer mitigation targets.
type Body struct {
	// Center is the cylinder axis position at floor level.
	Center geom.Vec3
	// Radius is the cylinder radius (≈0.25 m for a torso).
	Radius float64
	// Height is the cylinder height (≈1.8 m).
	Height float64
}

// DefaultBody returns a body at the given floor position with typical
// human dimensions.
func DefaultBody(at geom.Vec3) Body {
	return Body{Center: geom.V(at.X, 0, at.Z), Radius: 0.25, Height: 1.8}
}

// BlocksSegment reports whether the segment from a to b passes through
// the body cylinder.
func (b Body) BlocksSegment(a, c geom.Vec3) bool {
	// Work in 2D (XZ): distance from cylinder axis to the segment.
	ax, az := a.X, a.Z
	cx, cz := c.X, c.Z
	px, pz := b.Center.X, b.Center.Z
	dx, dz := cx-ax, cz-az
	l2 := dx*dx + dz*dz
	t := 0.0
	if l2 > 0 {
		t = ((px-ax)*dx + (pz-az)*dz) / l2
		t = geom.Clamp(t, 0, 1)
	}
	qx, qz := ax+t*dx, az+t*dz
	ddx, ddz := px-qx, pz-qz
	if ddx*ddx+ddz*ddz > b.Radius*b.Radius {
		return false
	}
	// Height check at the closest-approach parameter.
	y := a.Y + t*(c.Y-a.Y)
	return y >= 0 && y <= b.Height
}

// Path is one propagation path from TX to RX.
type Path struct {
	// Dir is the departure direction at the transmitter.
	Dir geom.Vec3
	// Length is the total path length in meters.
	Length float64
	// ExtraLossDB accumulates reflection and blockage losses.
	ExtraLossDB float64
	// Reflections counts wall bounces (0 = LOS).
	Reflections int
	// Blocked reports whether a body intersects the path.
	Blocked bool
}

// Channel is the ray-traced propagation model: LOS plus first-order
// reflections off the room's six surfaces, with human-body blockage.
// It is the offline stand-in for the commercial Remcom simulator the
// paper used for Fig. 3d.
type Channel struct {
	Room Room
	// BodyLossDB is the penetration loss a blocked path suffers
	// (measured human blockage at 60 GHz: 20–35 dB).
	BodyLossDB float64
	// Bodies are the current blockers.
	Bodies []Body
	// SecondOrder adds two-bounce reflections (wall→wall, wall→ceiling,
	// …). They sit ~16 dB below LOS and matter mainly as a last-resort
	// fallback when both the LOS and every first-order path are blocked.
	SecondOrder bool
}

// NewChannel returns a channel model for the room with the standard
// 25 dB body loss.
func NewChannel(room Room) *Channel {
	return &Channel{Room: room, BodyLossDB: 25}
}

// SetBodies replaces the blockage set (typically the other users'
// positions each frame).
func (ch *Channel) SetBodies(bodies []Body) { ch.Bodies = bodies }

// Paths enumerates the propagation paths from tx to rx: the LOS path and
// one image-method reflection per room surface. Paths whose reflection
// point falls outside the surface are discarded.
func (ch *Channel) Paths(tx, rx geom.Vec3) []Path {
	out := make([]Path, 0, 7)
	out = append(out, ch.finishPath(tx, rx, tx, rx, 0))

	b := ch.Room.Bounds
	// Image method: mirror RX across each of the six planes; the straight
	// segment tx→mirror crosses the plane at the reflection point.
	mirrors := []struct {
		axis  int     // 0=X, 1=Y, 2=Z
		coord float64 // plane coordinate
	}{
		{0, b.Min.X}, {0, b.Max.X},
		{1, b.Min.Y}, {1, b.Max.Y},
		{2, b.Min.Z}, {2, b.Max.Z},
	}
	for _, m := range mirrors {
		img := rx
		switch m.axis {
		case 0:
			img.X = 2*m.coord - rx.X
		case 1:
			img.Y = 2*m.coord - rx.Y
		default:
			img.Z = 2*m.coord - rx.Z
		}
		// Reflection point: where tx→img crosses the plane.
		d := img.Sub(tx)
		var denom, num float64
		switch m.axis {
		case 0:
			denom, num = d.X, m.coord-tx.X
		case 1:
			denom, num = d.Y, m.coord-tx.Y
		default:
			denom, num = d.Z, m.coord-tx.Z
		}
		if math.Abs(denom) < 1e-12 {
			continue
		}
		t := num / denom
		if t <= 1e-6 || t >= 1-1e-6 {
			continue
		}
		rp := tx.Add(d.Scale(t))
		if !b.Expand(1e-9).Contains(rp) {
			continue
		}
		p := ch.finishPath(tx, rp, rp, rx, 1)
		p.ExtraLossDB += ch.Room.WallLossDB
		p.Length = tx.Dist(rp) + rp.Dist(rx)
		p.Dir = rp.Sub(tx).Norm()
		out = append(out, p)
	}
	if ch.SecondOrder {
		out = append(out, ch.secondOrderPaths(tx, rx, mirrors)...)
	}
	return out
}

// secondOrderPaths enumerates two-bounce image-method paths: mirror RX
// across surface B, then treat the image as the target of a first-order
// bounce off surface A. Only distinct-axis surface pairs are used (the
// dominant double bounces in a shoebox room).
func (ch *Channel) secondOrderPaths(tx, rx geom.Vec3, mirrors []struct {
	axis  int
	coord float64
}) []Path {
	b := ch.Room.Bounds
	var out []Path
	reflect := func(p geom.Vec3, axis int, coord float64) geom.Vec3 {
		switch axis {
		case 0:
			p.X = 2*coord - p.X
		case 1:
			p.Y = 2*coord - p.Y
		default:
			p.Z = 2*coord - p.Z
		}
		return p
	}
	crossAt := func(a, c geom.Vec3, axis int, coord float64) (geom.Vec3, bool) {
		d := c.Sub(a)
		var denom, num float64
		switch axis {
		case 0:
			denom, num = d.X, coord-a.X
		case 1:
			denom, num = d.Y, coord-a.Y
		default:
			denom, num = d.Z, coord-a.Z
		}
		if math.Abs(denom) < 1e-12 {
			return geom.Vec3{}, false
		}
		t := num / denom
		if t <= 1e-6 || t >= 1-1e-6 {
			return geom.Vec3{}, false
		}
		p := a.Add(d.Scale(t))
		if !b.Expand(1e-9).Contains(p) {
			return geom.Vec3{}, false
		}
		return p, true
	}
	for _, mA := range mirrors {
		for _, mB := range mirrors {
			if mA.axis == mB.axis {
				continue
			}
			// Double image: rx mirrored across B then across A.
			img := reflect(reflect(rx, mB.axis, mB.coord), mA.axis, mA.coord)
			// First bounce point on A along tx→img.
			rpA, ok := crossAt(tx, img, mA.axis, mA.coord)
			if !ok {
				continue
			}
			// Second bounce point on B along rpA→(rx mirrored across B).
			imgB := reflect(rx, mB.axis, mB.coord)
			rpB, ok := crossAt(rpA, imgB, mB.axis, mB.coord)
			if !ok {
				continue
			}
			p := Path{
				Dir:         rpA.Sub(tx).Norm(),
				Length:      tx.Dist(rpA) + rpA.Dist(rpB) + rpB.Dist(rx),
				Reflections: 2,
				ExtraLossDB: 2 * ch.Room.WallLossDB,
			}
			for _, body := range ch.Bodies {
				if body.BlocksSegment(tx, rpA) || body.BlocksSegment(rpA, rpB) || body.BlocksSegment(rpB, rx) {
					p.Blocked = true
					p.ExtraLossDB += ch.BodyLossDB
					break
				}
			}
			out = append(out, p)
		}
	}
	return out
}

// finishPath builds a path for the (possibly two-segment) route and
// applies blockage to it.
func (ch *Channel) finishPath(txSeg1a, txSeg1b, seg2a, seg2b geom.Vec3, refl int) Path {
	p := Path{
		Dir:         txSeg1b.Sub(txSeg1a).Norm(),
		Length:      txSeg1a.Dist(txSeg1b),
		Reflections: refl,
	}
	if refl == 0 {
		p.Length = txSeg1a.Dist(seg2b)
	}
	for _, body := range ch.Bodies {
		blocked := body.BlocksSegment(txSeg1a, txSeg1b)
		if !blocked && refl > 0 {
			blocked = body.BlocksSegment(seg2a, seg2b)
		}
		if blocked {
			p.Blocked = true
			p.ExtraLossDB += ch.BodyLossDB
			break
		}
	}
	return p
}

// FSPL returns the 60 GHz free-space path loss in dB for distance d.
func FSPL(d float64) float64 {
	if d < 0.1 {
		d = 0.1
	}
	return 20 * math.Log10(4*math.Pi*d/Wavelength())
}

// Fading is a temporal small-scale fading process: an Ornstein-Uhlenbeck
// excursion in dB applied on top of the deterministic ray-traced RSS,
// modelling the residual fluctuation measured on static 60 GHz links
// (breathing, small reflector motion). It is deterministic given its
// seed and is stepped explicitly so simulations stay reproducible.
type Fading struct {
	// StdDB is the stationary standard deviation of the excursion.
	StdDB float64
	// TauS is the correlation time constant in seconds.
	TauS float64

	state float64
	rng   *rand.Rand
}

// NewFading returns a fading process with typical indoor 60 GHz numbers
// (σ = 1.5 dB, τ = 0.5 s).
func NewFading(seed int64) *Fading {
	return &Fading{StdDB: 1.5, TauS: 0.5, rng: rand.New(rand.NewSource(seed))}
}

// Step advances the process by dt seconds and returns the current
// excursion in dB.
func (f *Fading) Step(dt float64) float64 {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(1))
	}
	tau := f.TauS
	if tau <= 0 {
		tau = 0.5
	}
	theta := 1 / tau
	sigma := f.StdDB * math.Sqrt(2*theta)
	f.state += -theta*f.state*dt + sigma*math.Sqrt(dt)*f.rng.NormFloat64()
	return f.state
}

// OffsetDB returns the current excursion without advancing time.
func (f *Fading) OffsetDB() float64 { return f.state }
