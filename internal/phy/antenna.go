// Package phy models the 802.11ad mmWave physical layer the paper's
// testbed measures: phased antenna arrays with complex antenna weight
// vectors (AWVs), directional beam patterns, a default DFT beam codebook,
// a shoebox-room ray-traced channel with first-order reflections (the
// Remcom Wireless InSite stand-in), human-body blockage, the 60 GHz link
// budget, and the 802.11ad/802.11ac MCS tables that map received signal
// strength to PHY rate.
//
// Conventions: angles are radians, distances meters, powers dBm, gains
// dBi. Azimuth is measured in the XZ plane from +Z toward +X; elevation
// above the XZ plane (see geom.Vec3.AzimuthElevation).
package phy

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"volcast/internal/geom"
)

// Speed of light (m/s) and the 60 GHz ISM carrier used by 802.11ad.
const (
	SpeedOfLight = 299_792_458.0
	CarrierHz    = 60.48e9
)

// Wavelength returns the carrier wavelength in meters.
func Wavelength() float64 { return SpeedOfLight / CarrierHz }

// AWV is a complex antenna weight vector, one weight per array element.
// The radiated power scales with ‖w‖², so beams are compared under a
// total-power constraint by normalizing to unit norm (see Normalize).
type AWV []complex128

// Normalize scales w to unit norm (total power constraint). The zero
// vector is returned unchanged.
func (w AWV) Normalize() AWV {
	var p float64
	for _, c := range w {
		p += real(c)*real(c) + imag(c)*imag(c)
	}
	if p == 0 {
		return w
	}
	s := complex(1/math.Sqrt(p), 0)
	out := make(AWV, len(w))
	for i, c := range w {
		out[i] = c * s
	}
	return out
}

// Power returns ‖w‖².
func (w AWV) Power() float64 {
	var p float64
	for _, c := range w {
		p += real(c)*real(c) + imag(c)*imag(c)
	}
	return p
}

// Scale returns w scaled by the real factor s.
func (w AWV) Scale(s float64) AWV {
	out := make(AWV, len(w))
	for i, c := range w {
		out[i] = c * complex(s, 0)
	}
	return out
}

// Add returns the element-wise sum w + v; the vectors must have equal
// length.
func (w AWV) Add(v AWV) AWV {
	out := make(AWV, len(w))
	for i := range w {
		out[i] = w[i] + v[i]
	}
	return out
}

// Array is a uniform planar array (UPA) of isotropic-ish patch elements
// with half-wavelength spacing, plus its mounting pose in the room. The
// Airfide AP in the paper exposes 8 patches; we model the equivalent
// aggregate aperture as one NX×NY UPA.
type Array struct {
	// NX, NY are the element counts along the array's local X and Y axes.
	NX, NY int
	// SpacingWl is the element spacing in wavelengths (0.5 default).
	SpacingWl float64
	// ElementGainDBi is the per-element gain toward boresight.
	ElementGainDBi float64
	// Pos is the array phase-center position in the room.
	Pos geom.Vec3
	// Rot orients the array: local +Z is boresight, +X/+Y span the panel.
	Rot geom.Quat

	// imperfections are fixed per-element amplitude/phase errors that
	// model COTS hardware (quantized phase shifters, mutual coupling):
	// they raise the sidelobe floor from the ideal array factor's deep
	// nulls to the ~−12 dB real devices show — the "irregular patterns"
	// the paper lists as an open challenge for custom beams.
	imperfections AWV
}

// NewArray returns an NX×NY half-wavelength UPA at the given pose, with
// the standard COTS imperfection profile.
func NewArray(nx, ny int, pos geom.Vec3, rot geom.Quat) (*Array, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("phy: array dims %dx%d invalid", nx, ny)
	}
	a := &Array{
		NX: nx, NY: ny,
		SpacingWl:      0.5,
		ElementGainDBi: 5,
		Pos:            pos,
		Rot:            rot,
	}
	a.imperfections = elementErrors(nx*ny, 0.20, 0.08, 12345)
	return a, nil
}

// elementErrors builds deterministic per-element complex gain errors with
// the given phase (rad) and amplitude standard deviations.
func elementErrors(n int, phaseStd, ampStd float64, seed int64) AWV {
	r := rand.New(rand.NewSource(seed))
	out := make(AWV, n)
	for i := range out {
		amp := 1 + ampStd*r.NormFloat64()
		ph := phaseStd * r.NormFloat64()
		out[i] = complex(amp*math.Cos(ph), amp*math.Sin(ph))
	}
	return out
}

// Elements returns the element count.
func (a *Array) Elements() int { return a.NX * a.NY }

// localDir transforms a world direction into array-local coordinates.
func (a *Array) localDir(world geom.Vec3) geom.Vec3 {
	return a.Rot.Conj().Rotate(world)
}

// SteeringVector returns the array response a(u) for a plane wave leaving
// toward the world-frame unit direction dir. Element (m,n) sits at local
// position (m·d, n·d, 0) with d the element spacing.
func (a *Array) SteeringVector(dir geom.Vec3) AWV {
	u := a.localDir(dir.Norm())
	d := a.SpacingWl * Wavelength()
	k := 2 * math.Pi / Wavelength()
	out := make(AWV, 0, a.Elements())
	for n := 0; n < a.NY; n++ {
		for m := 0; m < a.NX; m++ {
			phase := k * d * (float64(m)*u.X + float64(n)*u.Y)
			out = append(out, cmplx.Exp(complex(0, phase)))
		}
	}
	return out
}

// SteerTo returns the unit-power AWV that points the main lobe at the
// world direction dir (conjugate beamforming).
func (a *Array) SteerTo(dir geom.Vec3) AWV {
	sv := a.SteeringVector(dir)
	out := make(AWV, len(sv))
	for i, c := range sv {
		out[i] = cmplx.Conj(c)
	}
	return AWV(out).Normalize()
}

// GainDBi returns the transmit gain of weight vector w toward world
// direction dir, including the element gain and a simple cosine element
// pattern (no radiation behind the panel).
func (a *Array) GainDBi(w AWV, dir geom.Vec3) float64 {
	u := a.localDir(dir.Norm())
	if u.Z <= 0 {
		return -60 // behind the panel: deep in the back lobe
	}
	sv := a.SteeringVector(dir)
	var acc complex128
	for i := range w {
		e := complex(1, 0)
		if i < len(a.imperfections) {
			e = a.imperfections[i]
		}
		acc += w[i] * e * sv[i]
	}
	af := cmplx.Abs(acc)
	if af < 1e-9 {
		af = 1e-9
	}
	// |w^H a|² for unit-norm w peaks at N (the array gain); add the
	// element pattern (cos^1.2 roll-off toward the panel plane).
	elemGain := a.ElementGainDBi + 10*1.2*math.Log10(math.Max(u.Z, 1e-3))
	return 10*math.Log10(af*af) + elemGain
}

// QuantizeAWV maps an ideal weight vector onto what a COTS phased array
// can realize: phases rounded to 2^phaseBits steps and, when phaseOnly is
// set (true for virtually all 802.11ad hardware, which has phase shifters
// but no per-element amplitude control), amplitudes forced uniform. The
// result is re-normalized to unit power. phaseBits <= 0 leaves phases
// continuous.
func QuantizeAWV(w AWV, phaseBits int, phaseOnly bool) AWV {
	out := make(AWV, len(w))
	steps := 0.0
	if phaseBits > 0 {
		steps = float64(uint64(1) << uint(phaseBits))
	}
	for i, c := range w {
		amp := cmplx.Abs(c)
		if amp == 0 {
			out[i] = 0
			continue
		}
		ph := math.Atan2(imag(c), real(c))
		if steps > 0 {
			ph = math.Round(ph/(2*math.Pi)*steps) / steps * 2 * math.Pi
		}
		if phaseOnly {
			amp = 1
		}
		out[i] = complex(amp*math.Cos(ph), amp*math.Sin(ph))
	}
	return out.Normalize()
}
