package phy

import (
	"math"

	"volcast/internal/geom"
)

// Sector is one entry of a beam codebook: a precomputed AWV with the
// direction it was designed for.
type Sector struct {
	// Index is the sector's position in the codebook.
	Index int
	// AzRad, ElRad are the design direction in array-local angles.
	AzRad, ElRad float64
	// W is the unit-power weight vector.
	W AWV
}

// Codebook is a set of predefined beams, like the sector sweep codebook a
// commercial 802.11ad device ships with. The paper's Fig. 3b shows that
// these default single-lobe beams cannot serve multicast groups well.
type Codebook struct {
	Sectors []Sector
}

// CodebookConfig controls DefaultCodebook generation.
type CodebookConfig struct {
	// AzSectors is the number of azimuth steps across the coverage span.
	AzSectors int
	// ElSectors is the number of elevation steps.
	ElSectors int
	// AzSpanRad is the total azimuth coverage (centered on boresight).
	AzSpanRad float64
	// ElSpanRad is the total elevation coverage (centered on boresight).
	ElSpanRad float64
}

// DefaultCodebookConfig matches a commodity 11ad router: 32 azimuth
// sectors over ±60°, 3 elevation rows over ±30°.
func DefaultCodebookConfig() CodebookConfig {
	return CodebookConfig{
		AzSectors: 32,
		ElSectors: 3,
		AzSpanRad: geom.Rad(120),
		ElSpanRad: geom.Rad(60),
	}
}

// DefaultCodebook builds the device's default single-lobe codebook for the
// array: a grid of steered beams covering the forward sector.
func DefaultCodebook(a *Array, cfg CodebookConfig) *Codebook {
	if cfg.AzSectors <= 0 {
		cfg = DefaultCodebookConfig()
	}
	cb := &Codebook{}
	idx := 0
	for e := 0; e < cfg.ElSectors; e++ {
		el := 0.0
		if cfg.ElSectors > 1 {
			el = -cfg.ElSpanRad/2 + cfg.ElSpanRad*float64(e)/float64(cfg.ElSectors-1)
		}
		for s := 0; s < cfg.AzSectors; s++ {
			az := -cfg.AzSpanRad/2 + cfg.AzSpanRad*(float64(s)+0.5)/float64(cfg.AzSectors)
			// Steer in array-local coordinates, then rotate to world.
			localDir := geom.FromAzEl(az, el)
			worldDir := a.Rot.Rotate(localDir)
			cb.Sectors = append(cb.Sectors, Sector{
				Index: idx, AzRad: az, ElRad: el, W: a.SteerTo(worldDir),
			})
			idx++
		}
	}
	return cb
}

// BestSector returns the codebook sector with the highest gain toward the
// world direction dir (what sector-level sweep training would select).
func (cb *Codebook) BestSector(a *Array, dir geom.Vec3) (Sector, float64) {
	best := Sector{Index: -1}
	bestGain := math.Inf(-1)
	for _, s := range cb.Sectors {
		if g := a.GainDBi(s.W, dir); g > bestGain {
			best, bestGain = s, g
		}
	}
	return best, bestGain
}

// Len returns the number of sectors.
func (cb *Codebook) Len() int { return len(cb.Sectors) }
