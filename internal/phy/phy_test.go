package phy

import (
	"math"
	"testing"

	"volcast/internal/geom"
)

// testArray returns the standard 8x4 UPA at the room's front wall facing
// +Z (into the room).
func testArray(t testing.TB) *Array {
	t.Helper()
	a, err := NewArray(8, 4, geom.V(0, 2.5, -4), geom.QuatIdent())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(0, 4, geom.Vec3{}, geom.QuatIdent()); err == nil {
		t.Error("0-element array accepted")
	}
	if _, err := NewArray(4, -1, geom.Vec3{}, geom.QuatIdent()); err == nil {
		t.Error("negative array accepted")
	}
}

func TestAWVNormalize(t *testing.T) {
	w := AWV{2, 0, 2i, 0}
	n := w.Normalize()
	if math.Abs(n.Power()-1) > 1e-12 {
		t.Errorf("normalized power = %v", n.Power())
	}
	// Zero vector unchanged, no NaN.
	z := AWV{0, 0}
	if got := z.Normalize(); got.Power() != 0 {
		t.Errorf("zero normalize = %v", got)
	}
	// Add / Scale.
	s := w.Scale(0.5)
	if s[0] != 1 {
		t.Errorf("Scale = %v", s[0])
	}
	sum := w.Add(w)
	if sum[0] != 4 {
		t.Errorf("Add = %v", sum[0])
	}
}

func TestSteeredBeamPeaksAtTarget(t *testing.T) {
	a := testArray(t)
	target := geom.V(2, 0, 3).Sub(a.Pos).Norm()
	w := a.SteerTo(target)
	peak := a.GainDBi(w, target)
	// Peak gain ≈ 10log10(32) + 5 dBi element ≈ 20 dBi.
	if peak < 17 || peak > 23 {
		t.Errorf("peak gain %v dBi, want ~20", peak)
	}
	// Gains at ±20° azimuth off-target are significantly below the peak.
	az, el := target.AzimuthElevation()
	off := geom.FromAzEl(az+geom.Rad(20), el)
	if g := a.GainDBi(w, off); g > peak-8 {
		t.Errorf("20° off-beam gain %v too close to peak %v", g, peak)
	}
	// Behind the panel: essentially no radiation.
	if g := a.GainDBi(w, geom.V(0, 0, -1)); g > -50 {
		t.Errorf("back-lobe gain %v", g)
	}
}

func TestSteeringVectorUnitModulus(t *testing.T) {
	a := testArray(t)
	sv := a.SteeringVector(geom.V(0.3, -0.1, 0.9))
	if len(sv) != 32 {
		t.Fatalf("steering vector len %d", len(sv))
	}
	for i, c := range sv {
		if math.Abs(real(c)*real(c)+imag(c)*imag(c)-1) > 1e-9 {
			t.Fatalf("element %d modulus != 1", i)
		}
	}
}

func TestCodebookCoverage(t *testing.T) {
	a := testArray(t)
	cb := DefaultCodebook(a, DefaultCodebookConfig())
	if cb.Len() != 96 {
		t.Fatalf("codebook size %d, want 96", cb.Len())
	}
	// Every direction in the forward sector gets a decent best-sector gain.
	for az := -50.0; az <= 50; az += 10 {
		dir := a.Rot.Rotate(geom.FromAzEl(geom.Rad(az), 0))
		_, g := cb.BestSector(a, dir)
		if g < 12 {
			t.Errorf("best gain at az %v = %v dBi, want >= 12", az, g)
		}
	}
}

func TestFSPL(t *testing.T) {
	// 60 GHz at 1 m ≈ 68 dB.
	if got := FSPL(1); math.Abs(got-68) > 1 {
		t.Errorf("FSPL(1m) = %v", got)
	}
	// +6 dB per distance doubling.
	if d := FSPL(2) - FSPL(1); math.Abs(d-6.02) > 0.1 {
		t.Errorf("doubling delta = %v", d)
	}
	// Clamped below 10 cm.
	if FSPL(0.001) != FSPL(0.1) {
		t.Error("short distance not clamped")
	}
}

func TestBodyBlocksSegment(t *testing.T) {
	b := DefaultBody(geom.V(0, 0, 2))
	// Ray through the body at torso height.
	if !b.BlocksSegment(geom.V(0, 1.5, 0), geom.V(0, 1.5, 4)) {
		t.Error("through-torso segment not blocked")
	}
	// Ray passing 1 m to the side.
	if b.BlocksSegment(geom.V(1, 1.5, 0), geom.V(1, 1.5, 4)) {
		t.Error("side segment blocked")
	}
	// Ray passing above the head.
	if b.BlocksSegment(geom.V(0, 2.5, 0), geom.V(0, 2.5, 4)) {
		t.Error("overhead segment blocked")
	}
	// Segment ending before the body.
	if b.BlocksSegment(geom.V(0, 1.5, 0), geom.V(0, 1.5, 1)) {
		t.Error("short segment blocked")
	}
}

func TestChannelPathsLOSAndReflections(t *testing.T) {
	ch := NewChannel(DefaultRoom())
	tx := geom.V(0, 2.5, -4)
	rx := geom.V(1, 1.5, 2)
	paths := ch.Paths(tx, rx)
	nLOS, nRefl := 0, 0
	for _, p := range paths {
		switch p.Reflections {
		case 0:
			nLOS++
			if math.Abs(p.Length-tx.Dist(rx)) > 1e-9 {
				t.Errorf("LOS length %v", p.Length)
			}
			if p.ExtraLossDB != 0 {
				t.Errorf("LOS extra loss %v", p.ExtraLossDB)
			}
		case 1:
			nRefl++
			if p.Length <= tx.Dist(rx) {
				t.Errorf("reflection shorter than LOS: %v", p.Length)
			}
			if p.ExtraLossDB < ch.Room.WallLossDB {
				t.Errorf("reflection missing wall loss: %v", p.ExtraLossDB)
			}
		}
	}
	if nLOS != 1 {
		t.Errorf("%d LOS paths", nLOS)
	}
	// Interior TX/RX see several wall/floor/ceiling bounces.
	if nRefl < 4 {
		t.Errorf("only %d reflection paths", nRefl)
	}
}

func TestBlockageAttenuatesLOS(t *testing.T) {
	a := testArray(t)
	ch := NewChannel(DefaultRoom())
	r := NewRadio(a, ch)
	rx := geom.V(0, 1.5, 2)
	w := a.SteerTo(rx.Sub(a.Pos).Norm())
	clear := r.RSS(w, rx)

	// Put a body right in the LOS.
	ch.SetBodies([]Body{DefaultBody(geom.V(0, 0, 1))})
	blocked := r.RSS(w, rx)
	if clear-blocked < 5 {
		t.Errorf("blockage dropped RSS only %.1f dB (clear %.1f, blocked %.1f)",
			clear-blocked, clear, blocked)
	}
	// LOS-only view shows the full body loss.
	losBlocked := r.RSSLOSOnly(w, rx)
	losClear := clear // approximately, since LOS dominates when aligned
	if losClear-losBlocked < 20 {
		t.Errorf("LOS-only blockage loss %.1f dB, want >= 20", losClear-losBlocked)
	}
}

func TestRSSCalibrationBand(t *testing.T) {
	// Viewing positions 1.5–4.5 m from the AP with best default sector
	// must land in the paper's measured band (−80…−50 dBm).
	a := testArray(t)
	ch := NewChannel(DefaultRoom())
	r := NewRadio(a, ch)
	cb := DefaultCodebook(a, DefaultCodebookConfig())
	for _, rx := range []geom.Vec3{
		geom.V(0, 1.5, -1), geom.V(2, 1.5, 0), geom.V(-2, 1.3, 2), geom.V(1, 1.6, 3),
	} {
		s, _ := cb.BestSector(a, rx.Sub(a.Pos).Norm())
		rss := r.RSS(s.W, rx)
		if rss < -80 || rss > -45 {
			t.Errorf("RSS at %v = %.1f dBm outside calibration band", rx, rss)
		}
	}
}

func TestBestPathDirPrefersUnblocked(t *testing.T) {
	ch := NewChannel(DefaultRoom())
	tx := geom.V(0, 2.5, -4)
	rx := geom.V(0, 1.5, 2)
	dirClear, ok := ch.bestDirFor(tx, rx)
	if !ok {
		t.Fatal("no path")
	}
	los := rx.Sub(tx).Norm()
	if dirClear.Dot(los) < 0.999 {
		t.Errorf("clear best path not LOS: %v", dirClear)
	}
	// Block the LOS: best path must change to a reflection.
	ch.SetBodies([]Body{DefaultBody(geom.V(0, 0, 1))})
	dirBlocked, ok := ch.bestDirFor(tx, rx)
	if !ok {
		t.Fatal("no path when blocked")
	}
	if dirBlocked.Dot(los) > 0.999 {
		t.Error("blocked best path still LOS")
	}
}

// bestDirFor adapts Radio.BestPathDir for a bare channel in tests.
func (ch *Channel) bestDirFor(tx, rx geom.Vec3) (geom.Vec3, bool) {
	a, _ := NewArray(8, 4, tx, geom.QuatIdent())
	r := NewRadio(a, ch)
	return r.BestPathDir(rx)
}

func TestSelectMCS(t *testing.T) {
	// Paper anchor: −68 dBm supports 385 Mbps (MCS1).
	m, ok := SelectMCS(AD_SC_MCS, -68)
	if !ok || m.Index != 1 || m.RateMbps != 385 {
		t.Errorf("SelectMCS(-68) = %+v, %v", m, ok)
	}
	// Strong signal gets the top MCS.
	m, ok = SelectMCS(AD_SC_MCS, -40)
	if !ok || m.Index != 12 {
		t.Errorf("SelectMCS(-40) = %+v", m)
	}
	// Outage below the lowest sensitivity.
	if _, ok := SelectMCS(AD_SC_MCS, -75); ok {
		t.Error("outage RSS selected an MCS")
	}
	if r := RateForRSS(AD_SC_MCS, -75); r != 0 {
		t.Errorf("outage rate %v", r)
	}
	if r := RateForRSS(AD_SC_MCS, -60); r != 2310 {
		t.Errorf("RateForRSS(-60) = %v", r)
	}
}

func TestMCSTableMonotone(t *testing.T) {
	for _, table := range [][]MCS{AD_SC_MCS, AC_VHT80_MCS} {
		for i := 1; i < len(table); i++ {
			if table[i].SensitivityDBm <= table[i-1].SensitivityDBm {
				t.Errorf("sensitivities not increasing at %d", i)
			}
			if table[i].RateMbps <= table[i-1].RateMbps {
				t.Errorf("rates not increasing at %d", i)
			}
		}
	}
}

func TestCommonMCS(t *testing.T) {
	// Group limited by weakest member.
	m, ok := CommonMCS(AD_SC_MCS, []float64{-55, -68, -60})
	if !ok || m.Index != 1 {
		t.Errorf("CommonMCS = %+v", m)
	}
	if _, ok := CommonMCS(AD_SC_MCS, nil); ok {
		t.Error("empty group got an MCS")
	}
	if _, ok := CommonMCS(AD_SC_MCS, []float64{-55, -90}); ok {
		t.Error("group with outage member got an MCS")
	}
}

func TestSNR(t *testing.T) {
	r := &Radio{Budget: DefaultLinkBudget()}
	if got := r.SNR(-60); math.Abs(got-14.5) > 1e-9 {
		t.Errorf("SNR = %v", got)
	}
}

func BenchmarkRSS(b *testing.B) {
	a := testArray(b)
	ch := NewChannel(DefaultRoom())
	ch.SetBodies([]Body{DefaultBody(geom.V(1, 0, 1))})
	r := NewRadio(a, ch)
	rx := geom.V(1, 1.5, 2)
	w := a.SteerTo(rx.Sub(a.Pos).Norm())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RSS(w, rx)
	}
}

func BenchmarkBestSector(b *testing.B) {
	a := testArray(b)
	cb := DefaultCodebook(a, DefaultCodebookConfig())
	dir := geom.V(1, -0.2, 2).Norm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = cb.BestSector(a, dir)
	}
}

func TestQuantizeAWV(t *testing.T) {
	a := testArray(t)
	target := geom.V(1.5, -0.5, 3).Norm()
	ideal := a.SteerTo(target)

	// Phase quantization alone: small loss, unit power.
	q2 := QuantizeAWV(ideal, 2, false)
	if math.Abs(q2.Power()-1) > 1e-9 {
		t.Errorf("quantized power %v", q2.Power())
	}
	gi := a.GainDBi(ideal, target)
	g2 := a.GainDBi(q2, target)
	if gi-g2 > 1.5 {
		t.Errorf("2-bit phase quantization lost %.2f dB (ideal %.1f, quant %.1f)", gi-g2, gi, g2)
	}
	if g2 > gi+0.3 {
		t.Errorf("quantization gained gain? %.1f vs %.1f", g2, gi)
	}
	// Steered beams are constant-modulus already: phase-only changes little.
	po := QuantizeAWV(ideal, 0, true)
	if gp := a.GainDBi(po, target); math.Abs(gp-gi) > 0.5 {
		t.Errorf("phase-only on steered beam lost %.2f dB", gi-gp)
	}
	// Zero elements stay zero.
	z := QuantizeAWV(AWV{0, 1}, 2, true)
	if z[0] != 0 {
		t.Errorf("zero element became %v", z[0])
	}
}

func TestFadingStatistics(t *testing.T) {
	f := NewFading(7)
	const dt = 1.0 / 30
	var sum, sumsq float64
	n := 30_000
	for i := 0; i < n; i++ {
		v := f.Step(dt)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.3 {
		t.Errorf("fading mean %v, want ~0", mean)
	}
	if std < 0.8 || std > 2.5 {
		t.Errorf("fading std %v, want ~1.5", std)
	}
	// Deterministic given the seed.
	a, b := NewFading(3), NewFading(3)
	for i := 0; i < 100; i++ {
		if a.Step(dt) != b.Step(dt) {
			t.Fatal("fading not deterministic")
		}
	}
	if a.OffsetDB() != b.OffsetDB() {
		t.Fatal("OffsetDB mismatch")
	}
	// Zero-value works (lazy rng, default tau).
	var z Fading
	z.StdDB = 1
	_ = z.Step(dt)
}

func TestSecondOrderReflections(t *testing.T) {
	ch := NewChannel(DefaultRoom())
	tx := geom.V(0, 2.5, -4)
	rx := geom.V(1, 1.5, 2)
	first := len(ch.Paths(tx, rx))
	ch.SecondOrder = true
	paths := ch.Paths(tx, rx)
	if len(paths) <= first {
		t.Fatalf("second order added no paths: %d vs %d", len(paths), first)
	}
	for _, p := range paths {
		if p.Reflections == 2 {
			if p.ExtraLossDB < 2*ch.Room.WallLossDB {
				t.Errorf("double bounce missing wall losses: %v", p.ExtraLossDB)
			}
			if p.Length <= tx.Dist(rx) {
				t.Errorf("double bounce shorter than LOS: %v", p.Length)
			}
		}
	}
	// Fallback value: block LOS and every first-order path with a wall of
	// bodies; a second-order path can still route around when geometry
	// allows — at minimum the model must not panic and RSS must not rise.
	a, _ := NewArray(8, 4, tx, geom.QuatIdent())
	r := NewRadio(a, ch)
	w := a.SteerTo(rx.Sub(tx).Norm())
	withSecond := r.RSS(w, rx)
	ch.SecondOrder = false
	withoutSecond := r.RSS(w, rx)
	if withSecond < withoutSecond-1e-9 {
		t.Errorf("adding paths lowered RSS: %.2f vs %.2f", withSecond, withoutSecond)
	}
}
