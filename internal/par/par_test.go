package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"volcast/internal/testutil/leakcheck"
)

func TestWorkersDefaultPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
}

func TestSetWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0) // restores the environment default
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0)", Workers())
	}
}

// TestMapDeterministic checks the index-ordered merge: the result slice
// must be identical for worker counts 1, 4 and 16.
func TestMapDeterministic(t *testing.T) {
	const n = 257
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := MapN(context.Background(), workers, n, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachRunsAll(t *testing.T) {
	// The pool is per-call: every worker must be gone once ForEachN
	// returns, across every pool width.
	leak := leakcheck.Take()
	defer leak.Check(t)
	for _, workers := range []int{1, 4, 16} {
		var count atomic.Int64
		if err := ForEachN(context.Background(), workers, 100, func(int) error {
			count.Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if count.Load() != 100 {
			t.Fatalf("workers=%d: ran %d items, want 100", workers, count.Load())
		}
	}
}

// TestLowestIndexErrorWins checks the deterministic error selection:
// when several items fail, the lowest-index error is returned for every
// pool width.
func TestLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEachN(context.Background(), workers, 64, func(i int) error {
			if i%7 == 3 { // items 3, 10, 17, … fail
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: err = %v, want item 3 failed", workers, err)
		}
	}
}

func TestPanicPropagatesAsError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachN(context.Background(), workers, 16, func(i int) error {
			if i == 5 {
				panic("boom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 5 || pe.Value != "boom" {
			t.Fatalf("workers=%d: PanicError = {Index:%d Value:%v}", workers, pe.Index, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError has no stack", workers)
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Fatalf("workers=%d: Error() = %q", workers, pe.Error())
		}
	}
}

// TestCancelStopsScheduling checks that a pre-cancelled context schedules
// no work and that a mid-run cancellation stops new items promptly.
func TestCancelStopsScheduling(t *testing.T) {
	// Cancellation must not strand workers: the in-flight items finish
	// and every goroutine exits (the retry in Check absorbs the tail).
	leak := leakcheck.Take()
	defer leak.Check(t)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var count atomic.Int64
		err := ForEachN(ctx, workers, 100, func(int) error {
			count.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if count.Load() != 0 {
			t.Fatalf("workers=%d: pre-cancelled context ran %d items", workers, count.Load())
		}
	}

	// Mid-run: cancel once the first item starts. At most `workers` items
	// beyond the in-flight ones can still be scheduled before the loop
	// observes the cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int64
	err := ForEachN(ctx, 2, 10_000, func(int) error {
		count.Add(1)
		cancel()
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := count.Load(); got > 100 {
		t.Fatalf("cancellation did not stop scheduling: ran %d of 10000 items", got)
	}
}

func TestMapReturnsErrorNilResults(t *testing.T) {
	got, err := Map(context.Background(), 8, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("no")
		}
		return i, nil
	})
	if err == nil || got != nil {
		t.Fatalf("Map = (%v, %v), want (nil, error)", got, err)
	}
}

func TestZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}
