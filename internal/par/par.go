// Package par is the repo's parallel execution substrate: a bounded
// worker pool that fans indexed work items out across goroutines and
// merges results strictly by index, so every caller stays bit-for-bit
// deterministic regardless of pool width. It adds panic capture (a
// panicking work item surfaces as an error instead of killing the
// process) and context cancellation (a cancelled context stops the
// scheduling of new items).
//
// The default pool width is the VOLCAST_WORKERS environment variable
// when set, otherwise GOMAXPROCS; SetWorkers overrides it at runtime
// (cmd flags use this). Width 1 runs items inline on the calling
// goroutine in index order — exactly the pre-parallel behaviour.
package par

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide pool width; 0 means "not yet
// initialized from the environment".
var defaultWorkers atomic.Int64

// envWorkers resolves the initial pool width: VOLCAST_WORKERS when it
// parses as a positive integer, else GOMAXPROCS.
func envWorkers() int {
	if s := os.Getenv("VOLCAST_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the current default pool width.
func Workers() int {
	if w := defaultWorkers.Load(); w > 0 {
		return int(w)
	}
	w := envWorkers()
	defaultWorkers.CompareAndSwap(0, int64(w))
	return int(defaultWorkers.Load())
}

// SetWorkers overrides the default pool width; n < 1 restores the
// environment default.
func SetWorkers(n int) {
	if n < 1 {
		n = envWorkers()
	}
	defaultWorkers.Store(int64(n))
}

// PanicError wraps a panic recovered from a work item.
type PanicError struct {
	// Index is the work-item index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: work item %d panicked: %v", e.Index, e.Value)
}

// call runs fn(i) converting panics into *PanicError.
func call(i int, fn func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// ForEach runs fn(0) … fn(n-1) on the default pool width. See ForEachN.
func ForEach(ctx context.Context, n int, fn func(i int) error) error {
	return ForEachN(ctx, 0, n, fn)
}

// ForEachN runs fn(0) … fn(n-1) on a pool of the given width (≤ 0 means
// the default width). All items run unless an item fails or ctx is
// cancelled, either of which stops the scheduling of new items (items
// already running complete). The returned error is deterministic: the
// lowest-index item error wins; a cancellation with no item error
// returns ctx.Err(). With an effective width of 1 the items run inline
// in index order and the first error returns immediately.
func ForEachN(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			if err := call(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var failed atomic.Bool
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := call(i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	var ctxErr error
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
schedule:
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			ctxErr = ctx.Err()
			break
		}
		select {
		case next <- i:
		case <-done:
			ctxErr = ctx.Err()
			break schedule
		}
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctxErr
}

// Map runs fn over 0 … n-1 on the default pool width and returns the
// results merged by index (never by completion order). See ForEachN for
// the error and cancellation semantics.
func Map[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN[T](ctx, 0, n, fn)
}

// MapN is Map with an explicit pool width (≤ 0 means the default).
func MapN[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachN(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
