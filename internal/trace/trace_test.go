package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"volcast/internal/geom"
)

func TestDeviceString(t *testing.T) {
	if DeviceHeadset.String() != "HM" || DevicePhone.String() != "PH" {
		t.Error("device labels wrong")
	}
	if Device(9).String() == "" {
		t.Error("unknown device empty")
	}
}

func TestPoseAtClamping(t *testing.T) {
	tr := &Trace{Hz: 30, Samples: []Sample{
		{T: 0, Pose: geom.Pose{Pos: geom.V(0, 0, 0), Rot: geom.QuatIdent()}},
		{T: 1.0 / 30, Pose: geom.Pose{Pos: geom.V(1, 0, 0), Rot: geom.QuatIdent()}},
	}}
	if got := tr.PoseAt(-5).Pos; got != (geom.Vec3{}) {
		t.Errorf("PoseAt(-5) = %v", got)
	}
	if got := tr.PoseAt(100).Pos; got != geom.V(1, 0, 0) {
		t.Errorf("PoseAt(100) = %v", got)
	}
	empty := &Trace{}
	if got := empty.PoseAt(0).Rot; got != geom.QuatIdent() {
		t.Errorf("empty PoseAt rot = %v", got)
	}
}

func TestPoseAtTimeInterpolates(t *testing.T) {
	tr := &Trace{Hz: 10, Samples: []Sample{
		{T: 0, Pose: geom.Pose{Pos: geom.V(0, 0, 0), Rot: geom.QuatIdent()}},
		{T: 0.1, Pose: geom.Pose{Pos: geom.V(1, 0, 0), Rot: geom.QuatIdent()}},
		{T: 0.2, Pose: geom.Pose{Pos: geom.V(2, 0, 0), Rot: geom.QuatIdent()}},
	}}
	if got := tr.PoseAtTime(0.05).Pos; !got.ApproxEq(geom.V(0.5, 0, 0), 1e-9) {
		t.Errorf("PoseAtTime(0.05) = %v", got)
	}
	if got := tr.PoseAtTime(-1).Pos; got != (geom.Vec3{}) {
		t.Errorf("PoseAtTime(-1) = %v", got)
	}
	if got := tr.PoseAtTime(99).Pos; got != geom.V(2, 0, 0) {
		t.Errorf("PoseAtTime(99) = %v", got)
	}
}

func TestKinematics(t *testing.T) {
	// Constant velocity 3 m/s along X at 30 Hz.
	tr := &Trace{Hz: 30}
	for i := 0; i < 30; i++ {
		tr.Samples = append(tr.Samples, Sample{
			T:    float64(i) / 30,
			Pose: geom.Pose{Pos: geom.V(3*float64(i)/30, 0, 0), Rot: geom.QuatIdent()},
		})
	}
	v := tr.Velocity(15)
	if !v.ApproxEq(geom.V(3, 0, 0), 1e-9) {
		t.Errorf("Velocity = %v", v)
	}
	if got := tr.PathLength(); math.Abs(got-2.9) > 1e-9 {
		t.Errorf("PathLength = %v", got)
	}
	if got := tr.AngularSpeed(15); got != 0 {
		t.Errorf("AngularSpeed = %v", got)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := GenerateStudy(60, 42)
	b := GenerateStudy(60, 42)
	if a.Users() != 32 || b.Users() != 32 {
		t.Fatalf("study sizes %d, %d", a.Users(), b.Users())
	}
	for u := range a.Traces {
		for i := range a.Traces[u].Samples {
			pa, pb := a.Traces[u].Samples[i].Pose, b.Traces[u].Samples[i].Pose
			if pa.Pos != pb.Pos || pa.Rot != pb.Rot {
				t.Fatalf("non-deterministic at user %d sample %d", u, i)
			}
		}
	}
	c := GenerateStudy(60, 43)
	if c.Traces[0].Samples[30].Pose.Pos == a.Traces[0].Samples[30].Pose.Pos {
		t.Error("different seeds produced identical trace")
	}
}

func TestStudyComposition(t *testing.T) {
	s := GenerateStudy(30, 1)
	hm := s.ByDevice(DeviceHeadset)
	ph := s.ByDevice(DevicePhone)
	if len(hm) != 16 || len(ph) != 16 {
		t.Fatalf("groups %d HM, %d PH", len(hm), len(ph))
	}
	seen := map[int]bool{}
	for _, tr := range s.Traces {
		if seen[tr.UserID] {
			t.Fatalf("duplicate user id %d", tr.UserID)
		}
		seen[tr.UserID] = true
		if tr.Len() != 30 {
			t.Fatalf("trace length %d", tr.Len())
		}
		if tr.Hz != 30 {
			t.Fatalf("trace Hz %d", tr.Hz)
		}
	}
}

func TestTracesLookAtContent(t *testing.T) {
	s := GenerateStudy(300, 7)
	for _, tr := range s.Traces {
		looking := 0
		for i := 0; i < tr.Len(); i += 10 {
			p := tr.PoseAt(i)
			for _, poi := range StudyPOIs() {
				toContent := poi.Add(geom.V(0, 1.2, 0)).Sub(p.Pos).Norm()
				if p.Rot.Forward().Dot(toContent) > 0.5 {
					looking++
					break
				}
			}
		}
		if frac := float64(looking) / float64((tr.Len()+9)/10); frac < 0.5 {
			t.Errorf("user %d (%v) looks at the stage only %.0f%% of the time",
				tr.UserID, tr.Device, frac*100)
		}
	}
}

func TestHeadsetMovesMoreThanPhone(t *testing.T) {
	s := GenerateStudy(300, 11)
	avgPath := func(trs []*Trace) float64 {
		sum := 0.0
		for _, tr := range trs {
			sum += tr.PathLength()
		}
		return sum / float64(len(trs))
	}
	hm := avgPath(s.ByDevice(DeviceHeadset))
	ph := avgPath(s.ByDevice(DevicePhone))
	if hm <= ph {
		t.Errorf("HM path %v not larger than PH path %v", hm, ph)
	}
}

func TestTracesSmooth(t *testing.T) {
	s := GenerateStudy(300, 13)
	for _, tr := range s.Traces {
		for i := 1; i < tr.Len(); i++ {
			step := tr.Samples[i].Pose.Pos.Dist(tr.Samples[i-1].Pose.Pos)
			// No teleporting: < 1 m per 33 ms sample (30 m/s bound).
			if step > 1 {
				t.Fatalf("user %d jumped %.2f m at sample %d", tr.UserID, step, i)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := GenerateStudy(20, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Users() != s.Users() {
		t.Fatalf("users %d != %d", got.Users(), s.Users())
	}
	for u := range s.Traces {
		a, b := s.Traces[u], got.Traces[u]
		if a.UserID != b.UserID || a.Device != b.Device || a.Hz != b.Hz || a.Len() != b.Len() {
			t.Fatalf("meta mismatch user %d: %+v vs %+v", u, a, b)
		}
		for i := range a.Samples {
			if !a.Samples[i].Pose.Pos.ApproxEq(b.Samples[i].Pose.Pos, 1e-12) {
				t.Fatalf("pos mismatch user %d sample %d", u, i)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"not,a,header,x,x,x,x,x,x,x\n1,HM,0,0,0,0,1,0,0,0\n",
		"user,device,t,px,py,pz,qw,qx,qy,qz\nBAD,HM,0,0,0,0,1,0,0,0\n",
		"user,device,t,px,py,pz,qw,qx,qy,qz\n1,XX,0,0,0,0,1,0,0,0\n",
		"user,device,t,px,py,pz,qw,qx,qy,qz\n1,HM,zz,0,0,0,1,0,0,0\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func BenchmarkGenerateStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GenerateStudy(300, int64(i))
	}
}
