// Package trace provides 6DoF viewport trajectories: the data type, CSV
// serialization, kinematic helpers, and a deterministic synthetic
// generator standing in for the paper's IRB-approved 32-participant user
// study. The study's participants watched volumetric videos on either a
// Magic Leap One headset (group "HM") or a smartphone (group "PH"); the
// generator reproduces the behavioural difference the paper reports —
// headset users move more freely, so their pairwise viewport similarity is
// lower — via a shared content-saliency attention model with per-device
// mobility envelopes.
package trace

import (
	"fmt"

	"volcast/internal/geom"
)

// Device is the viewing device class of the user study.
type Device int

// The two study groups.
const (
	DeviceHeadset Device = iota // "HM": Magic Leap One
	DevicePhone                 // "PH": smartphone
)

// String implements fmt.Stringer using the paper's group labels.
func (d Device) String() string {
	switch d {
	case DeviceHeadset:
		return "HM"
	case DevicePhone:
		return "PH"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// Sample is one timestamped 6DoF viewport pose.
type Sample struct {
	// T is the sample time in seconds from trace start.
	T float64
	// Pose is the viewport pose at T.
	Pose geom.Pose
}

// Trace is one user's viewport trajectory, sampled at a fixed rate
// (the study recorded 30 Hz).
type Trace struct {
	// UserID identifies the participant (0-based).
	UserID int
	// Device is the participant's study group.
	Device Device
	// Hz is the sampling rate.
	Hz int
	// Samples are the poses in time order.
	Samples []Sample
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// PoseAt returns the pose at sample index i, clamping out-of-range indices
// to the trace ends so callers can look slightly past either end.
func (t *Trace) PoseAt(i int) geom.Pose {
	if len(t.Samples) == 0 {
		return geom.Pose{Rot: geom.QuatIdent()}
	}
	if i < 0 {
		i = 0
	}
	if i >= len(t.Samples) {
		i = len(t.Samples) - 1
	}
	return t.Samples[i].Pose
}

// PoseAtTime linearly interpolates the pose at time tsec.
func (t *Trace) PoseAtTime(tsec float64) geom.Pose {
	if len(t.Samples) == 0 {
		return geom.Pose{Rot: geom.QuatIdent()}
	}
	if t.Hz <= 0 {
		return t.Samples[0].Pose
	}
	f := tsec * float64(t.Hz)
	i := int(f)
	if i < 0 {
		return t.Samples[0].Pose
	}
	if i >= len(t.Samples)-1 {
		return t.Samples[len(t.Samples)-1].Pose
	}
	return t.Samples[i].Pose.Lerp(t.Samples[i+1].Pose, f-float64(i))
}

// Velocity estimates the translational velocity (m/s) at sample i by
// central difference.
func (t *Trace) Velocity(i int) geom.Vec3 {
	if t.Hz <= 0 || len(t.Samples) < 2 {
		return geom.Vec3{}
	}
	a := t.PoseAt(i - 1).Pos
	b := t.PoseAt(i + 1).Pos
	dt := 2.0 / float64(t.Hz)
	return b.Sub(a).Scale(1 / dt)
}

// AngularSpeed estimates the rotational speed (rad/s) at sample i.
func (t *Trace) AngularSpeed(i int) float64 {
	if t.Hz <= 0 || len(t.Samples) < 2 {
		return 0
	}
	a := t.PoseAt(i - 1).Rot
	b := t.PoseAt(i + 1).Rot
	dt := 2.0 / float64(t.Hz)
	return a.AngleTo(b) / dt
}

// PathLength returns the total translational distance of the trace.
func (t *Trace) PathLength() float64 {
	total := 0.0
	for i := 1; i < len(t.Samples); i++ {
		total += t.Samples[i].Pose.Pos.Dist(t.Samples[i-1].Pose.Pos)
	}
	return total
}

// Study is a complete multi-user trace collection for one video.
type Study struct {
	// Traces holds one trace per participant, indexed by UserID.
	Traces []*Trace
}

// ByDevice returns the traces of one study group.
func (s *Study) ByDevice(d Device) []*Trace {
	var out []*Trace
	for _, t := range s.Traces {
		if t.Device == d {
			out = append(out, t)
		}
	}
	return out
}

// Users returns the number of participants.
func (s *Study) Users() int { return len(s.Traces) }
