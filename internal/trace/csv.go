package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"volcast/internal/geom"
)

// csvHeader is the column layout of the trace interchange format: one row
// per sample, matching how 6DoF study logs are usually published
// (timestamp, position, orientation quaternion).
var csvHeader = []string{"user", "device", "t", "px", "py", "pz", "qw", "qx", "qy", "qz"}

// WriteCSV writes the study in the interchange format.
func WriteCSV(w io.Writer, s *Study) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for _, t := range s.Traces {
		for _, smp := range t.Samples {
			row[0] = strconv.Itoa(t.UserID)
			row[1] = t.Device.String()
			row[2] = strconv.FormatFloat(smp.T, 'g', -1, 64)
			row[3] = strconv.FormatFloat(smp.Pose.Pos.X, 'g', -1, 64)
			row[4] = strconv.FormatFloat(smp.Pose.Pos.Y, 'g', -1, 64)
			row[5] = strconv.FormatFloat(smp.Pose.Pos.Z, 'g', -1, 64)
			row[6] = strconv.FormatFloat(smp.Pose.Rot.W, 'g', -1, 64)
			row[7] = strconv.FormatFloat(smp.Pose.Rot.X, 'g', -1, 64)
			row[8] = strconv.FormatFloat(smp.Pose.Rot.Y, 'g', -1, 64)
			row[9] = strconv.FormatFloat(smp.Pose.Rot.Z, 'g', -1, 64)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a study from the interchange format. Sample rate is
// inferred from the first user's timestamps.
func ReadCSV(r io.Reader) (*Study, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if recs[0][0] != "user" {
		return nil, fmt.Errorf("trace: missing header row")
	}
	byUser := map[int]*Trace{}
	var order []int
	for li, rec := range recs[1:] {
		uid, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad user id %q", li+2, rec[0])
		}
		var dev Device
		switch rec[1] {
		case "HM":
			dev = DeviceHeadset
		case "PH":
			dev = DevicePhone
		default:
			return nil, fmt.Errorf("trace: line %d: unknown device %q", li+2, rec[1])
		}
		f := make([]float64, 8)
		for i := 0; i < 8; i++ {
			v, err := strconv.ParseFloat(rec[2+i], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d col %d: %w", li+2, 3+i, err)
			}
			f[i] = v
		}
		t, ok := byUser[uid]
		if !ok {
			t = &Trace{UserID: uid, Device: dev}
			byUser[uid] = t
			order = append(order, uid)
		}
		t.Samples = append(t.Samples, Sample{
			T: f[0],
			Pose: geom.Pose{
				Pos: geom.V(f[1], f[2], f[3]),
				Rot: geom.Quat{W: f[4], X: f[5], Y: f[6], Z: f[7]},
			},
		})
	}
	s := &Study{}
	for _, uid := range order {
		t := byUser[uid]
		if len(t.Samples) >= 2 {
			dt := t.Samples[1].T - t.Samples[0].T
			if dt > 0 {
				t.Hz = int(1/dt + 0.5)
			}
		}
		s.Traces = append(s.Traces, t)
	}
	return s, nil
}
