package trace

import (
	"math"
	"math/rand"

	"volcast/internal/geom"
)

// GenConfig configures the synthetic study generator.
type GenConfig struct {
	// Users is the number of participants to generate.
	Users int
	// Device is the participants' viewing device.
	Device Device
	// Frames is the trace length in samples.
	Frames int
	// Hz is the sampling rate (the study used 30).
	Hz int
	// Seed makes generation deterministic. Participants derive their own
	// sub-seeds, so individual traces are independent but reproducible.
	// The shared saliency schedule also derives from Seed, so groups that
	// watched the same video must use the same Seed.
	Seed int64
	// UserOffset offsets both the generated UserIDs and the per-user
	// sub-seeds, letting several groups share one Seed (same video, same
	// saliency schedule) without correlated individual behaviour.
	UserOffset int
	// ContentCenter is the point the content stands on (floor level).
	ContentCenter geom.Vec3
	// ContentHeight is the content's height; attention targets live on
	// the vertical span above ContentCenter.
	ContentHeight float64
	// CenterAz rotates the group's placement arc around the content
	// (radians; 0 keeps the arc centered on +Z). Experiments use it to
	// seat users on the access-point side of the room.
	CenterAz float64
	// POIs are the floor positions of the scene's attention targets
	// (performers). Empty means a single target at ContentCenter. With
	// several targets, the shared saliency schedule switches the group's
	// attention between them and users occasionally deviate to a
	// performer of their own choice — the source of the IoU spread in
	// Fig. 2.
	POIs []geom.Vec3
}

// DefaultGenConfig matches the paper's study shape: 30 Hz, 300-frame
// (10 s) session around a human-height content at the origin.
func DefaultGenConfig(device Device, users int, seed int64) GenConfig {
	return GenConfig{
		Users:         users,
		Device:        device,
		Frames:        300,
		Hz:            30,
		Seed:          seed,
		ContentCenter: geom.Vec3{},
		ContentHeight: 1.8,
	}
}

// deviceEnvelope are the per-device mobility parameters. Headset users
// walk freely around the content; phone users mostly stand and pan,
// orbiting slowly if at all. These envelopes are what produce the paper's
// Fig. 2b ordering (PH similarity > HM similarity).
type deviceEnvelope struct {
	orbitSpeedMax float64 // rad/s around the content
	radialJitter  float64 // m, OU noise on viewing distance
	wanderStd     float64 // rad, personal gaze deviation from shared POI
	lookAwayProb  float64 // per-second probability of a look-away episode
	deviateProb   float64 // per-second probability of watching a performer of one's own choice
	deviateDurMax float64 // s, max length of such an episode
	baseRadiusMin float64 // m
	baseRadiusMax float64 // m
	spreadAngle   float64 // rad, initial azimuth spread of the group
}

func envelopeFor(d Device) deviceEnvelope {
	switch d {
	case DevicePhone:
		return deviceEnvelope{
			orbitSpeedMax: 0.04,
			radialJitter:  0.05,
			wanderStd:     0.05,
			lookAwayProb:  0.02,
			deviateProb:   0.06,
			deviateDurMax: 1.5,
			baseRadiusMin: 1.8,
			baseRadiusMax: 2.6,
			spreadAngle:   geom.Rad(50),
		}
	default: // headset
		return deviceEnvelope{
			orbitSpeedMax: 0.16,
			radialJitter:  0.25,
			wanderStd:     0.16,
			lookAwayProb:  0.08,
			deviateProb:   0.22,
			deviateDurMax: 3.5,
			baseRadiusMin: 1.2,
			baseRadiusMax: 3.2,
			spreadAngle:   geom.Rad(140),
		}
	}
}

// pois returns the scene's attention anchors (floor positions).
func pois(cfg GenConfig) []geom.Vec3 {
	if len(cfg.POIs) == 0 {
		return []geom.Vec3{cfg.ContentCenter}
	}
	return cfg.POIs
}

// activePerformer returns which attention anchor holds the group's shared
// attention at time t. The schedule is deterministic in (Seed, t): dwell
// segments of 2.5–5.5 s, switching anchors pseudo-randomly, modelling the
// content's saliency (the performer currently doing something).
func activePerformer(cfg GenConfig, t float64) int {
	anchors := pois(cfg)
	if len(anchors) == 1 {
		return 0
	}
	// Walk dwell segments from t=0; segment lengths derive from a cheap
	// deterministic hash of (seed, segment index).
	seg := 0
	acc := 0.0
	for {
		h := splitmix(uint64(cfg.Seed) ^ uint64(seg)*0x9e3779b97f4a7c15)
		dwell := 2.5 + 3.0*float64(h%1000)/1000.0
		if acc+dwell > t {
			return int(h>>10) % len(anchors)
		}
		acc += dwell
		seg++
		if seg > 10000 { // defensive bound; traces are seconds long
			return 0
		}
	}
}

// splitmix is the SplitMix64 mixer, used for small deterministic hashes.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sharedPOI returns the shared content point of interest at time t: the
// currently salient performer's upper body, with a gentle sweep. It is a
// deterministic function of (Seed, t) only, which is what couples the
// users' viewports together.
func sharedPOI(cfg GenConfig, t float64) geom.Vec3 {
	return performerPOI(cfg, activePerformer(cfg, t), t)
}

// performerPOI returns the gaze target on performer idx at time t.
func performerPOI(cfg GenConfig, idx int, t float64) geom.Vec3 {
	anchors := pois(cfg)
	if idx < 0 || idx >= len(anchors) {
		idx = 0
	}
	h := cfg.ContentHeight
	// Attention dwells around the upper body and occasionally sweeps down.
	y := h*0.75 + 0.18*h*math.Sin(0.35*t) + 0.07*h*math.Sin(1.3*t)
	x := 0.25 * math.Sin(0.5*t)
	z := 0.15 * math.Cos(0.23*t)
	return anchors[idx].Add(geom.V(x, y, z))
}

// Generate produces a deterministic synthetic study group.
func Generate(cfg GenConfig) *Study {
	if cfg.Hz <= 0 {
		cfg.Hz = 30
	}
	if cfg.ContentHeight <= 0 {
		cfg.ContentHeight = 1.8
	}
	env := envelopeFor(cfg.Device)
	study := &Study{Traces: make([]*Trace, cfg.Users)}
	for u := 0; u < cfg.Users; u++ {
		study.Traces[u] = generateUser(cfg, env, cfg.UserOffset+u, u, cfg.Users)
	}
	return study
}

func generateUser(cfg GenConfig, env deviceEnvelope, userID, slot, slots int) *Trace {
	r := rand.New(rand.NewSource(cfg.Seed + int64(userID+1)*104729))
	dt := 1.0 / float64(cfg.Hz)

	// Initial placement: stratified azimuth slots with personal jitter —
	// co-located viewers space themselves out rather than stand in each
	// other's line of sight — plus a personal radius.
	slotWidth := 2 * env.spreadAngle / float64(slots)
	azBase := cfg.CenterAz - env.spreadAngle + slotWidth*(float64(slot)+0.5)
	az := azBase + (r.Float64()-0.5)*slotWidth*0.6
	radius := env.baseRadiusMin + r.Float64()*(env.baseRadiusMax-env.baseRadiusMin)
	orbit := (r.Float64()*2 - 1) * env.orbitSpeedMax
	// Some users slowly converge toward the group's median azimuth over
	// the session (the "drift together" effect visible in the paper's
	// Fig. 2a pair (3,9), whose IoU rises to 1 by the end).
	converge := r.Float64() * 0.35

	// Second-order smooth noise: Ornstein-Uhlenbeck *velocities*
	// integrated into positions/angles, giving the C¹-continuous motion
	// real inertia produces (head and body velocity cannot jump).
	var radOU, wanderYawOU, wanderPitchOU float64    // integrated states
	var radVel, wanderYawVel, wanderPitchVel float64 // OU velocities
	var rot geom.Quat
	lookAway := 0.0 // remaining seconds of a look-away episode
	var lookDir geom.Vec3
	deviate := 0.0  // remaining seconds of a personal performer choice
	deviateIdx := 0 // which performer the user chose
	anchors := pois(cfg)

	tr := &Trace{UserID: userID, Device: cfg.Device, Hz: cfg.Hz,
		Samples: make([]Sample, cfg.Frames)}
	eyeHeight := 1.5 + r.Float64()*0.2
	if cfg.Device == DevicePhone {
		eyeHeight = 1.35 + r.Float64()*0.2 // held phone slightly below eyes
	}

	for i := 0; i < cfg.Frames; i++ {
		t := float64(i) * dt
		// Azimuth evolves: personal orbit + convergence pull toward 0.
		az += orbit*dt - converge*(az-cfg.CenterAz)*dt*0.12
		// OU velocities (mean-reverting) integrated into the states; both
		// the velocity and the state revert, bounding the excursions while
		// keeping the motion inertially smooth at 30 Hz — which is also
		// what makes short-horizon linear viewport prediction work.
		radVel += -1.5*radVel*dt + env.radialJitter*1.2*math.Sqrt(dt)*r.NormFloat64()
		radOU += radVel*dt - 0.4*radOU*dt
		wanderYawVel += -1.2*wanderYawVel*dt + env.wanderStd*1.5*math.Sqrt(dt)*r.NormFloat64()
		wanderYawOU += wanderYawVel*dt - 0.5*wanderYawOU*dt
		wanderPitchVel += -1.2*wanderPitchVel*dt + env.wanderStd*0.9*math.Sqrt(dt)*r.NormFloat64()
		wanderPitchOU += wanderPitchVel*dt - 0.5*wanderPitchOU*dt

		rad := geom.Clamp(radius+radOU, 0.8, 4.5)
		pos := cfg.ContentCenter.Add(geom.V(rad*math.Sin(az), eyeHeight, rad*math.Cos(az)))

		// Gaze: track the shared POI with personal wander; occasionally
		// look away entirely (checking surroundings, other users, UI).
		if lookAway <= 0 && r.Float64() < env.lookAwayProb*dt {
			lookAway = 0.4 + r.Float64()*1.2
			lookDir = geom.FromAzEl(r.Float64()*2*math.Pi-math.Pi, (r.Float64()-0.3)*0.8)
		}
		if deviate <= 0 && len(anchors) > 1 && r.Float64() < env.deviateProb*dt {
			deviate = 0.8 + r.Float64()*env.deviateDurMax
			deviateIdx = r.Intn(len(anchors))
		}
		var dir geom.Vec3
		switch {
		case lookAway > 0:
			lookAway -= dt
			dir = lookDir
		case deviate > 0:
			deviate -= dt
			dir = performerPOI(cfg, deviateIdx, t).Sub(pos).Norm()
			wq := geom.FromEuler(wanderYawOU, wanderPitchOU, 0)
			dir = wq.Rotate(dir)
		default:
			dir = sharedPOI(cfg, t).Sub(pos).Norm()
			// Personal wander perturbs the gaze around the POI.
			wq := geom.FromEuler(wanderYawOU, wanderPitchOU, 0)
			dir = wq.Rotate(dir)
		}
		target := geom.LookRotation(dir, geom.V(0, 1, 0))
		// Heads slew, they don't snap: bound the angular speed.
		const maxSlew = 3.5 // rad/s
		if i == 0 {
			rot = target
		} else {
			ang := rot.AngleTo(target)
			if ang > 1e-9 {
				f := maxSlew * dt / ang
				if f > 1 {
					f = 1
				}
				rot = rot.Slerp(target, f)
			}
		}
		tr.Samples[i] = Sample{T: t, Pose: geom.Pose{Pos: pos, Rot: rot}}
	}
	return tr
}

// StudyPOIs are the stage positions of the three-performer scene the
// synthetic study watches (matching pointcloud.DefaultSceneConfig).
func StudyPOIs() []geom.Vec3 {
	return []geom.Vec3{
		geom.V(-1.8, 0, 0.4),
		geom.V(0, 0, -0.3),
		geom.V(1.8, 0, 0.5),
	}
}

// GenerateStudy generates the full 32-participant study: 16 headset (HM)
// users followed by 16 phone (PH) users with globally unique user IDs,
// all watching the same three-performer scene under the same shared
// saliency schedule.
func GenerateStudy(frames int, seed int64) *Study {
	hm := Generate(GenConfig{
		Users: 16, Device: DeviceHeadset, Frames: frames, Hz: 30, Seed: seed,
		ContentHeight: 1.8, POIs: StudyPOIs(),
	})
	ph := Generate(GenConfig{
		Users: 16, Device: DevicePhone, Frames: frames, Hz: 30, Seed: seed,
		UserOffset: 16, ContentHeight: 1.8, POIs: StudyPOIs(),
	})
	out := &Study{}
	out.Traces = append(out.Traces, hm.Traces...)
	out.Traces = append(out.Traces, ph.Traces...)
	return out
}
