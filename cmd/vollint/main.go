// Command vollint type-checks the module and runs volcast's
// project-specific static-analysis suite (internal/lint): the six
// per-package checks (determinism, lockedsend, goroutinehygiene,
// tickleak, nilsafeobs, wireerr) plus the four interprocedural ones
// built on the module call graph (lockorder, bufown, wireevolve,
// hotpathalloc). Findings carry file:line, the check name and a fix
// hint; a //vollint:ignore <check> <reason> comment suppresses one with
// an audit trail.
//
// Usage:
//
//	vollint [-json] [-checks a,b] [-show-ignored] [-list]
//	        [-baseline file] [-schema file] [-update] [packages...]
//
// Patterns default to ./... and follow go-tool conventions (directories,
// module import paths, trailing /... for recursion). -baseline tolerates
// the findings recorded in the given file (the ratchet: new findings
// still fail, and so do stale entries for findings that were fixed);
// -update rewrites the baseline and the committed wire_schema.json to
// match the current tree. Exit status is 0 when clean or fully
// baselined, 1 on new findings or a stale baseline, 2 on usage, parse,
// or type errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"volcast/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vollint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	showIgnored := fs.Bool("show-ignored", false, "also print suppressed findings with their reasons")
	list := fs.Bool("list", false, "list the available checks and exit")
	baselinePath := fs.String("baseline", "", "tolerate the findings recorded in this file (new findings and stale entries still fail)")
	update := fs.Bool("update", false, "rewrite the baseline and wire_schema.json to match the current tree")
	schemaFlag := fs.String("schema", "", "wire schema file for the wireevolve check (default: wire_schema.json at the module root)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	fullSuite := true
	if *checks != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "vollint: unknown check %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
		fullSuite = len(analyzers) == len(lint.Analyzers())
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "vollint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "vollint: %v\n", err)
		return 2
	}
	typeErrs := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			typeErrs++
			fmt.Fprintf(stderr, "vollint: typecheck: %v\n", e)
		}
	}
	if typeErrs > 0 {
		return 2
	}

	schemaPath := *schemaFlag
	if schemaPath == "" {
		schemaPath = filepath.Join(loader.ModDir, "wire_schema.json")
	}
	if *update {
		if err := lint.WriteWireSchema(pkgs, schemaPath); err != nil {
			fmt.Fprintf(stderr, "vollint: write wire schema: %v\n", err)
			return 2
		}
	}

	res := lint.Run(pkgs, analyzers, lint.Options{
		ReportUnusedIgnores: fullSuite,
		SchemaPath:          schemaPath,
	})

	if *update {
		path := *baselinePath
		if path == "" {
			path = filepath.Join(loader.ModDir, "lint_baseline.json")
		}
		if err := lint.WriteBaseline(path, res.Findings, loader.ModDir); err != nil {
			fmt.Fprintf(stderr, "vollint: write baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "vollint: wrote %s (%d tolerated finding(s)) and %s\n",
			path, len(res.Findings), schemaPath)
		return 0
	}

	findings := res.Findings
	var baselined []lint.Finding
	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "vollint: baseline: %v\n", err)
			return 2
		}
		findings, baselined, stale = base.Apply(res.Findings, loader.ModDir)
	}

	if *jsonOut {
		out := struct {
			Checks     []string             `json:"checks"`
			Packages   int                  `json:"packages"`
			Findings   []lint.Finding       `json:"findings"`
			Baselined  []lint.Finding       `json:"baselined"`
			Stale      []lint.BaselineEntry `json:"stale_baseline"`
			Suppressed []lint.Finding       `json:"suppressed"`
		}{Packages: len(pkgs), Findings: findings, Baselined: baselined, Stale: stale, Suppressed: res.Suppressed}
		for _, a := range analyzers {
			out.Checks = append(out.Checks, a.Name)
		}
		if out.Findings == nil {
			out.Findings = []lint.Finding{}
		}
		if out.Baselined == nil {
			out.Baselined = []lint.Finding{}
		}
		if out.Stale == nil {
			out.Stale = []lint.BaselineEntry{}
		}
		if out.Suppressed == nil {
			out.Suppressed = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "vollint: %v\n", err)
			return 2
		}
	} else {
		cwd, _ := os.Getwd()
		for _, f := range findings {
			fmt.Fprintln(stdout, relativize(cwd, f).String())
		}
		for _, e := range stale {
			fmt.Fprintf(stdout, "vollint: stale baseline entry: %s in %s (%dx): %s — the finding is gone, run `vollint -update` to shrink the baseline\n",
				e.Check, e.File, e.Count, e.Msg)
		}
		if *showIgnored {
			for _, f := range res.Suppressed {
				rf := relativize(cwd, f)
				fmt.Fprintf(stdout, "%s:%d:%d: %s: suppressed: %s (reason: %s)\n",
					rf.File, rf.Line, rf.Col, rf.Check, rf.Msg, rf.SuppressReason)
			}
			for _, f := range baselined {
				rf := relativize(cwd, f)
				fmt.Fprintf(stdout, "%s:%d:%d: %s: baselined: %s\n",
					rf.File, rf.Line, rf.Col, rf.Check, rf.Msg)
			}
		}
		if len(findings) > 0 || len(baselined) > 0 {
			fmt.Fprintf(stdout, "vollint: %d finding(s) in %d package(s), %d baselined, %d suppressed\n",
				len(findings), len(pkgs), len(baselined), len(res.Suppressed))
		}
	}
	if len(findings) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}

// relativize shortens a finding's file path relative to the working
// directory when possible.
func relativize(cwd string, f lint.Finding) lint.Finding {
	if cwd == "" {
		return f
	}
	if rel, err := filepath.Rel(cwd, f.File); err == nil && !strings.HasPrefix(rel, "..") {
		f.File = rel
	}
	return f
}
