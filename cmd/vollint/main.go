// Command vollint type-checks the module and runs volcast's
// project-specific static-analysis suite (internal/lint): determinism,
// lockedsend, goroutinehygiene, tickleak, nilsafeobs, wireerr. Findings
// carry file:line, the check name and a fix hint; a
// //vollint:ignore <check> <reason> comment suppresses one with an audit
// trail.
//
// Usage:
//
//	vollint [-json] [-checks a,b] [-show-ignored] [-list] [packages...]
//
// Patterns default to ./... and follow go-tool conventions (directories,
// module import paths, trailing /... for recursion). Exit status is 0
// when clean, 1 on findings, 2 on usage, parse, or type errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"volcast/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vollint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	showIgnored := fs.Bool("show-ignored", false, "also print suppressed findings with their reasons")
	list := fs.Bool("list", false, "list the available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	fullSuite := true
	if *checks != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "vollint: unknown check %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
		fullSuite = len(analyzers) == len(lint.Analyzers())
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "vollint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "vollint: %v\n", err)
		return 2
	}
	typeErrs := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			typeErrs++
			fmt.Fprintf(stderr, "vollint: typecheck: %v\n", e)
		}
	}
	if typeErrs > 0 {
		return 2
	}

	res := lint.Run(pkgs, analyzers, fullSuite)

	if *jsonOut {
		out := struct {
			Checks     []string       `json:"checks"`
			Packages   int            `json:"packages"`
			Findings   []lint.Finding `json:"findings"`
			Suppressed []lint.Finding `json:"suppressed"`
		}{Packages: len(pkgs), Findings: res.Findings, Suppressed: res.Suppressed}
		for _, a := range analyzers {
			out.Checks = append(out.Checks, a.Name)
		}
		if out.Findings == nil {
			out.Findings = []lint.Finding{}
		}
		if out.Suppressed == nil {
			out.Suppressed = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "vollint: %v\n", err)
			return 2
		}
	} else {
		cwd, _ := os.Getwd()
		for _, f := range res.Findings {
			fmt.Fprintln(stdout, relativize(cwd, f).String())
		}
		if *showIgnored {
			for _, f := range res.Suppressed {
				rf := relativize(cwd, f)
				fmt.Fprintf(stdout, "%s:%d:%d: %s: suppressed: %s (reason: %s)\n",
					rf.File, rf.Line, rf.Col, rf.Check, rf.Msg, rf.SuppressReason)
			}
		}
		if len(res.Findings) > 0 {
			fmt.Fprintf(stdout, "vollint: %d finding(s) in %d package(s), %d suppressed\n",
				len(res.Findings), len(pkgs), len(res.Suppressed))
		}
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// relativize shortens a finding's file path relative to the working
// directory when possible.
func relativize(cwd string, f lint.Finding) lint.Finding {
	if cwd == "" {
		return f
	}
	if rel, err := filepath.Rel(cwd, f.File); err == nil && !strings.HasPrefix(rel, "..") {
		f.File = rel
	}
	return f
}
