package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"volcast/internal/lint"
)

const tickleakFixture = "../../internal/lint/testdata/tickleak"

// TestRunFlagsFixture drives the CLI against the deliberately-bad
// tickleak fixture — the demonstration that the `make lint` gate fails
// when a check regresses.
func TestRunFlagsFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "tickleak", tickleakFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if got := strings.Count(out.String(), ": tickleak: "); got != 3 {
		t.Fatalf("tickleak findings = %d, want 3\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "vollint: 3 finding(s)") {
		t.Errorf("missing summary line:\n%s", out.String())
	}
}

// TestRunJSON checks the machine-readable shape CI archives.
func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-checks", "tickleak", tickleakFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var rep struct {
		Checks   []string `json:"checks"`
		Packages int      `json:"packages"`
		Findings []struct {
			Check string `json:"check"`
			File  string `json:"file"`
			Line  int    `json:"line"`
			Msg   string `json:"msg"`
			Hint  string `json:"hint"`
		} `json:"findings"`
		Suppressed []json.RawMessage `json:"suppressed"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Packages != 1 || len(rep.Checks) != 1 || rep.Checks[0] != "tickleak" {
		t.Errorf("packages=%d checks=%v, want 1 package and [tickleak]", rep.Packages, rep.Checks)
	}
	if len(rep.Findings) != 3 {
		t.Fatalf("findings = %d, want 3\n%s", len(rep.Findings), out.String())
	}
	for _, f := range rep.Findings {
		if f.Check != "tickleak" || f.File == "" || f.Line == 0 || f.Msg == "" || f.Hint == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if rep.Suppressed == nil {
		t.Errorf("suppressed must be [] (not null) for stable consumers")
	}
}

// TestRunCleanPackage: a clean package exits 0 with no output.
func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/geom"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	// The full suite: six per-package checks plus the four
	// interprocedural ones. A new analyzer must be added here (and to
	// the docs) deliberately.
	want := []string{
		"determinism", "lockedsend", "goroutinehygiene", "tickleak",
		"nilsafeobs", "wireerr",
		"lockorder", "bufown", "wireevolve", "hotpathalloc",
	}
	names := lint.AnalyzerNames()
	if len(names) != len(want) {
		t.Errorf("AnalyzerNames() has %d checks, want %d: %v", len(names), len(want), names)
	}
	for _, name := range want {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestRunUnknownCheck(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(errb.String(), "unknown check") {
		t.Errorf("stderr missing diagnostic:\n%s", errb.String())
	}
}

// loadTickleakFindings runs just the tickleak analyzer over its fixture
// through the lint package, giving the baseline tests the exact findings
// the CLI will see (so they never hard-code messages that may evolve).
func loadTickleakFindings(t *testing.T) ([]lint.Finding, string) {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(tickleakFixture)
	if err != nil {
		t.Fatal(err)
	}
	var az []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		if a.Name == "tickleak" {
			az = append(az, a)
		}
	}
	res := lint.Run(pkgs, az, lint.Options{})
	if len(res.Findings) < 2 {
		t.Fatalf("tickleak fixture yields %d findings, need >= 2", len(res.Findings))
	}
	return res.Findings, loader.ModDir
}

// TestRunBaselineSuppresses pins the tolerated half of the ratchet: a
// baseline recording every current finding turns exit 1 into exit 0.
func TestRunBaselineSuppresses(t *testing.T) {
	findings, modDir := loadTickleakFindings(t)
	base := filepath.Join(t.TempDir(), "base.json")
	if err := lint.WriteBaseline(base, findings, modDir); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "tickleak", "-baseline", base, tickleakFixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (fully baselined)\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "baselined") {
		t.Errorf("summary should mention baselined findings:\n%s", out.String())
	}
}

// TestRunBaselineNewFinding pins the ratchet's teeth: a finding not in
// the baseline still fails, and only the fresh one is printed.
func TestRunBaselineNewFinding(t *testing.T) {
	findings, modDir := loadTickleakFindings(t)
	base := filepath.Join(t.TempDir(), "base.json")
	if err := lint.WriteBaseline(base, findings[1:], modDir); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "tickleak", "-baseline", base, tickleakFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (one finding outside the baseline)\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if got := strings.Count(out.String(), ": tickleak: "); got != 1 {
		t.Errorf("fresh findings printed = %d, want exactly 1 (the rest are baselined)\n%s", got, out.String())
	}
}

// TestRunBaselineStaleEntry pins the shrink half of the ratchet: an
// entry whose finding was fixed fails the run until -update removes it.
func TestRunBaselineStaleEntry(t *testing.T) {
	findings, modDir := loadTickleakFindings(t)
	base := filepath.Join(t.TempDir(), "base.json")
	if err := lint.WriteBaseline(base, findings, modDir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var b lint.Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	b.Entries = append(b.Entries, lint.BaselineEntry{
		Check: "tickleak", File: "internal/lint/testdata/tickleak/fixed.go",
		Msg: "a finding that no longer exists", Count: 1,
	})
	raw, err = json.MarshalIndent(&b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "tickleak", "-baseline", base, tickleakFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stale entry)\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "stale baseline entry") {
		t.Errorf("missing stale diagnostic:\n%s", out.String())
	}
}

// TestRunUpdateFlow drives the documented workflow end to end inside a
// throwaway module whose internal/wire is the wireevolve fixture:
// -update writes the schema and baseline next to go.mod, the following
// run is green, and deleting a committed trailing wire field turns the
// same invocation red — the acceptance contract for the evolution gate.
func TestRunUpdateFlow(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "internal", "lint", "testdata", "wireevolve", "wireevolve.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wireDir := filepath.Join(dir, "internal", "wire")
	if err := os.MkdirAll(wireDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module volcast\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	wireFile := filepath.Join(wireDir, "wire.go")
	writeWire := func(contents string) {
		t.Helper()
		if err := os.WriteFile(wireFile, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fixture := strings.Replace(string(src), "package wireevolve", "package wire", 1)
	writeWire(fixture)
	t.Chdir(dir)

	var out, errb bytes.Buffer
	code := run([]string{"-checks", "wireevolve", "-baseline", "lint_baseline.json", "-update", "./internal/wire"}, &out, &errb)
	if code != 0 {
		t.Fatalf("-update exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, p := range []string{"lint_baseline.json", "wire_schema.json"} {
		if _, err := os.Stat(filepath.Join(dir, p)); err != nil {
			t.Errorf("-update did not write %s: %v", p, err)
		}
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-checks", "wireevolve", "-baseline", "lint_baseline.json", "./internal/wire"}, &out, &errb)
	if code != 0 {
		t.Fatalf("post-update exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}

	// Deleting a committed trailing field (Welcome.Name) must fail the
	// run even with the freshly written baseline in force.
	writeWire(strings.Replace(fixture, "\tName string\n", "", 1))
	out.Reset()
	errb.Reset()
	code = run([]string{"-checks", "wireevolve", "-baseline", "lint_baseline.json", "./internal/wire"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit after trailing-field delete = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "wireevolve") || !strings.Contains(out.String(), "Welcome") {
		t.Errorf("missing wireevolve finding for Welcome:\n%s", out.String())
	}
}
