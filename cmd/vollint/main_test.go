package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"volcast/internal/lint"
)

const tickleakFixture = "../../internal/lint/testdata/tickleak"

// TestRunFlagsFixture drives the CLI against the deliberately-bad
// tickleak fixture — the demonstration that the `make lint` gate fails
// when a check regresses.
func TestRunFlagsFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "tickleak", tickleakFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if got := strings.Count(out.String(), ": tickleak: "); got != 3 {
		t.Fatalf("tickleak findings = %d, want 3\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "vollint: 3 finding(s)") {
		t.Errorf("missing summary line:\n%s", out.String())
	}
}

// TestRunJSON checks the machine-readable shape CI archives.
func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-checks", "tickleak", tickleakFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var rep struct {
		Checks   []string `json:"checks"`
		Packages int      `json:"packages"`
		Findings []struct {
			Check string `json:"check"`
			File  string `json:"file"`
			Line  int    `json:"line"`
			Msg   string `json:"msg"`
			Hint  string `json:"hint"`
		} `json:"findings"`
		Suppressed []json.RawMessage `json:"suppressed"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Packages != 1 || len(rep.Checks) != 1 || rep.Checks[0] != "tickleak" {
		t.Errorf("packages=%d checks=%v, want 1 package and [tickleak]", rep.Packages, rep.Checks)
	}
	if len(rep.Findings) != 3 {
		t.Fatalf("findings = %d, want 3\n%s", len(rep.Findings), out.String())
	}
	for _, f := range rep.Findings {
		if f.Check != "tickleak" || f.File == "" || f.Line == 0 || f.Msg == "" || f.Hint == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if rep.Suppressed == nil {
		t.Errorf("suppressed must be [] (not null) for stable consumers")
	}
}

// TestRunCleanPackage: a clean package exits 0 with no output.
func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/geom"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range lint.AnalyzerNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestRunUnknownCheck(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(errb.String(), "unknown check") {
		t.Errorf("stderr missing diagnostic:\n%s", errb.String())
	}
}
