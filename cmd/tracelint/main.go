// Command tracelint validates a volcast Perfetto trace dump (volsim
// -trace, volserve /trace): the file must parse as Chrome trace_event
// JSON, contain complete ("X") spans, cover at least -min-stages distinct
// pipeline stages on every fully-captured user frame, and name a
// responsible stage in every deadline-miss report. CI runs it on a small
// volsim session to keep the tracing pipeline honest end to end.
//
// With -flight it instead validates a flight-recorder dump (volserve
// -flight-dir, volload -flight-dir): the breach annotation must be
// present and complete, and the captured ring must cover at least two
// distinct pipeline stages.
//
// Usage:
//
//	tracelint [-min-stages 6] trace.json
//	tracelint -flight flightdumps/flight_3_81_miss_rate.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// traceEvent is the subset of the trace_event schema the linter reads.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

// missReport is one deadlineMisses entry.
type missReport struct {
	Frame   int     `json:"frame"`
	User    int     `json:"user"`
	TotalMS float64 `json:"total_ms"`
	Slowest string  `json:"slowest"`
}

// budgetReport is one budgetViolations entry: a (frame, user) with at
// least one stage over its per-stage budget.
type budgetReport struct {
	Frame      int                `json:"frame"`
	User       int                `json:"user"`
	OverBudget map[string]float64 `json:"over_budget"`
}

// flightInfo is the breach annotation a flight-recorder dump carries.
type flightInfo struct {
	Scene            string `json:"scene"`
	Window           int64  `json:"window"`
	Reason           string `json:"reason"`
	CapturedUnixNano int64  `json:"captured_unix_nano"`
}

// traceFile is the dump's object form.
type traceFile struct {
	TraceEvents      []traceEvent       `json:"traceEvents"`
	DeadlineMS       float64            `json:"deadlineMs"`
	DeadlineMisses   []missReport       `json:"deadlineMisses"`
	StageBudgetsMS   map[string]float64 `json:"stageBudgetsMs"`
	BudgetViolations []budgetReport     `json:"budgetViolations"`
	// Flight is present only on flight-recorder dumps (-flight mode).
	Flight *flightInfo `json:"flight"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracelint: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	minStages := flag.Int("min-stages", 6, "minimum distinct stages per fully-captured user frame (0 disables)")
	maxBudget := flag.Int("max-budget-violations", -1, "fail when more (frame,user) pairs exceed a per-stage budget (-1 = report only)")
	flight := flag.Bool("flight", false, "validate a flight-recorder dump: require the breach annotation and distinct stages across the ring, instead of full per-frame stage coverage")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: tracelint [-min-stages N] [-flight] trace.json")
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("%s: not valid trace_event JSON: %v", path, err)
	}

	// Per-frame distinct stage names, and which frames have user-track
	// (pid > 1) spans — the frames a viewer actually experienced.
	frameStages := map[int]map[string]bool{}
	userFrame := map[int]bool{}
	spans := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans++
		f, ok := ev.Args["frame"].(float64)
		if !ok || f < 0 {
			continue
		}
		fr := int(f)
		if frameStages[fr] == nil {
			frameStages[fr] = map[string]bool{}
		}
		frameStages[fr][ev.Name] = true
		if ev.PID > 1 {
			userFrame[fr] = true
		}
	}
	if spans == 0 {
		fail("%s: no complete (\"X\") spans", path)
	}

	// The ring buffer may have truncated the oldest frame and the run may
	// have cut off the newest mid-frame, so the strict stage-coverage
	// check skips the boundary frames.
	minF, maxF := -1, -1
	for f := range userFrame {
		if minF < 0 || f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	// Flight mode: the dump is a breach-window snapshot of the tracer
	// ring, so it must carry the breach annotation and show more than one
	// pipeline stage — but the ring boundary cuts frames arbitrarily, so
	// the strict per-frame coverage check does not apply.
	if *flight {
		if tf.Flight == nil {
			fail("%s: flight mode: no \"flight\" breach annotation", path)
		}
		if tf.Flight.Scene == "" || tf.Flight.Reason == "" {
			fail("%s: flight annotation incomplete: scene=%q reason=%q",
				path, tf.Flight.Scene, tf.Flight.Reason)
		}
		distinct := map[string]bool{}
		for _, ev := range tf.TraceEvents {
			if ev.Ph == "X" {
				distinct[ev.Name] = true
			}
		}
		if len(distinct) < 2 {
			fail("%s: flight dump covers %d distinct stages, want >= 2 (%v)",
				path, len(distinct), keys(distinct))
		}
		for _, m := range tf.DeadlineMisses {
			if m.Slowest == "" {
				fail("%s: deadline miss (frame %d, user %d) names no responsible stage", path, m.Frame, m.User)
			}
		}
		fmt.Printf("tracelint: %s ok — flight dump for scene %q (window %d, reason %q): %d spans, %d distinct stages, %d deadline misses attributed\n",
			path, tf.Flight.Scene, tf.Flight.Window, tf.Flight.Reason, spans, len(distinct), len(tf.DeadlineMisses))
		return
	}

	checked, worst, worstFrame := 0, -1, -1
	if *minStages > 0 {
		if len(userFrame) == 0 {
			fail("%s: no user-track frames to check stage coverage on", path)
		}
		for f := range userFrame {
			if f == minF || f == maxF {
				continue
			}
			n := len(frameStages[f])
			checked++
			if worst < 0 || n < worst {
				worst, worstFrame = n, f
			}
		}
		if checked == 0 {
			// A one- or two-frame trace has no interior frames: check the
			// best-covered frame instead of skipping validation entirely.
			for f := range userFrame {
				if n := len(frameStages[f]); n > worst {
					worst, worstFrame = n, f
				}
			}
			checked = 1
		}
		if worst < *minStages {
			fail("%s: frame %d covers %d distinct stages, want >= %d (got %v)",
				path, worstFrame, worst, *minStages, keys(frameStages[worstFrame]))
		}
	}

	for _, m := range tf.DeadlineMisses {
		if m.Slowest == "" {
			fail("%s: deadline miss (frame %d, user %d) names no responsible stage", path, m.Frame, m.User)
		}
	}

	// Per-stage budget verdicts: every violation must name its stages and
	// overruns, and -max-budget-violations turns the count into a gate.
	for _, v := range tf.BudgetViolations {
		if len(v.OverBudget) == 0 {
			fail("%s: budget violation (frame %d, user %d) names no over-budget stage", path, v.Frame, v.User)
		}
	}
	if n := len(tf.BudgetViolations); *maxBudget >= 0 && n > *maxBudget {
		worst := ""
		var worstMS float64
		for _, v := range tf.BudgetViolations {
			for st, over := range v.OverBudget {
				if over > worstMS {
					worst, worstMS = fmt.Sprintf("frame %d user %d stage %s (+%.2fms)", v.Frame, v.User, st, over), over
				}
			}
		}
		fail("%s: %d budget violations, want <= %d; worst: %s", path, n, *maxBudget, worst)
	}

	fmt.Printf("tracelint: %s ok — %d spans, %d user frames (%d checked, min %d stages), %d deadline misses attributed, %d budget violations\n",
		path, spans, len(userFrame), checked, worst, len(tf.DeadlineMisses), len(tf.BudgetViolations))
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
