// Command tracegen generates and inspects synthetic 6DoF viewport traces
// (the stand-in for the paper's 32-participant user study).
//
// Usage:
//
//	tracegen [-frames 300] [-seed 1] [-o traces.csv]    # generate CSV
//	tracegen -stats [-frames 300] [-seed 1]             # print summary
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"volcast/internal/trace"
)

func main() {
	frames := flag.Int("frames", 300, "samples per user (30 Hz)")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("o", "", "output CSV path (default stdout)")
	stats := flag.Bool("stats", false, "print per-user kinematics instead of CSV")
	flag.Parse()

	study := trace.GenerateStudy(*frames, *seed)

	if *stats {
		fmt.Printf("%-5s %-4s %-8s %-9s %-9s\n", "user", "dev", "samples", "path (m)", "avg |v|")
		for _, tr := range study.Traces {
			dur := float64(tr.Len()) / float64(tr.Hz)
			fmt.Printf("%-5d %-4s %-8d %-9.2f %-9.3f\n",
				tr.UserID, tr.Device, tr.Len(), tr.PathLength(), tr.PathLength()/dur)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, study); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		log.Printf("tracegen: wrote %d users × %d samples to %s", study.Users(), *frames, *out)
	}
}
