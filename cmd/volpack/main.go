// Command volpack manages encoded volcast content:
//
//	volpack pack   -o content.vcstor [-frames 90] [-points 100000] [-performers 3]
//	    synthesize a video, encode it at the standard stride ladder and
//	    write the store container (volserve can load it instead of
//	    re-encoding at startup).
//	volpack pack   -ply dir/ -o content.vcstor
//	    encode a directory of PLY frames (e.g. an 8i capture) instead of
//	    synthetic content; files are taken in lexical order.
//	volpack info   content.vcstor
//	    print the container's shape and bitrates.
//	volpack export content.vcstor -frame 0 -o frame0.ply
//	    decode one frame back to a PLY any viewer can open.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"volcast/internal/cell"
	"volcast/internal/codec"
	"volcast/internal/pointcloud"
	"volcast/internal/vivo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "pack":
		err = runPack(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "export":
		err = runExport(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		log.Fatal("volpack: ", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: volpack <pack|info|export> [flags]")
	os.Exit(2)
}

func runPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	out := fs.String("o", "content.vcstor", "output container path")
	frames := fs.Int("frames", 90, "synthetic frames")
	points := fs.Int("points", 100_000, "synthetic points per frame")
	performers := fs.Int("performers", 1, "synthetic humanoids")
	seed := fs.Int64("seed", 1, "synthetic seed")
	plyDir := fs.String("ply", "", "directory of PLY frames (overrides synthesis)")
	cellSize := fs.Float64("cell", cell.Size50, "cell edge length (m)")
	fs.Parse(args)

	var video *pointcloud.Video
	if *plyDir != "" {
		v, err := loadPLYDir(*plyDir)
		if err != nil {
			return err
		}
		video = v
		log.Printf("volpack: loaded %d PLY frames from %s", len(video.Frames), *plyDir)
	} else if *performers <= 1 {
		video = pointcloud.SynthVideo(pointcloud.SynthConfig{
			Frames: *frames, FPS: 30, PointsPerFrame: *points, Seed: *seed, Sway: 1,
		})
	} else {
		video = pointcloud.SynthScene(pointcloud.DefaultSceneConfig(*frames, *points, *seed))
	}
	b, ok := video.Bounds()
	if !ok {
		return fmt.Errorf("empty video")
	}
	g, err := cell.NewGrid(b, *cellSize)
	if err != nil {
		return err
	}
	store, err := vivo.BuildStore(video, g, codec.NewEncoder(codec.DefaultParams()), []int{1, 2, 3, 4})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := vivo.WriteStore(f, store); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	log.Printf("volpack: wrote %s (%.1f MB, %d frames, %.0f Mbps at 30 FPS)",
		*out, float64(info.Size())/1e6, store.NumFrames(),
		codec.BitrateMbps(store.AvgFrameBytes(), 30))
	return nil
}

// loadPLYDir reads every .ply in dir (lexical order) as one video frame.
func loadPLYDir(dir string) (*pointcloud.Video, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(strings.ToLower(e.Name()), ".ply") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .ply files in %s", dir)
	}
	sort.Strings(names)
	v := &pointcloud.Video{Name: filepath.Base(dir), FPS: 30}
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c, err := pointcloud.ReadPLY(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		v.Frames = append(v.Frames, c)
	}
	return v, nil
}

func runInfo(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("info needs a container path")
	}
	store, err := openStore(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("frames       %d at %d FPS (%.1f s looped)\n",
		store.NumFrames(), store.FPS(),
		float64(store.NumFrames())/float64(store.FPS()))
	nx, ny, nz := store.Grid().Dims()
	fmt.Printf("grid         %dx%dx%d cells of %.0f cm\n", nx, ny, nz, store.Grid().Size()*100)
	fmt.Printf("strides      %v\n", store.Strides())
	fmt.Printf("frame bytes  %.0f KB avg (full density)\n", store.AvgFrameBytes()/1e3)
	fmt.Printf("bitrate      %.0f Mbps at 30 FPS\n", codec.BitrateMbps(store.AvgFrameBytes(), 30))
	occ := store.Frame(0).Occupied.Count()
	fmt.Printf("occupancy    %d cells in frame 0\n", occ)
	return nil
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	frame := fs.Int("frame", 0, "frame index to export")
	out := fs.String("o", "frame.ply", "output PLY path")
	ascii := fs.Bool("ascii", false, "write ascii PLY instead of binary")
	if len(args) < 1 {
		return fmt.Errorf("export needs a container path")
	}
	fs.Parse(args[1:])
	store, err := openStore(args[0])
	if err != nil {
		return err
	}
	var dec codec.Decoder
	cloud, err := dec.DecodeFrame(store.Frame(*frame).ByStride[1])
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pointcloud.WritePLY(f, cloud, !*ascii); err != nil {
		return err
	}
	log.Printf("volpack: exported frame %d (%d points) to %s", *frame, cloud.Len(), *out)
	return nil
}

func openStore(path string) (*vivo.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return vivo.ReadStore(f)
}
