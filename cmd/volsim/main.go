// Command volsim regenerates the paper's tables and figures from the
// simulation substrate. Each subcommand prints the corresponding result
// in a text form matching what the paper reports.
//
// Usage:
//
//	volsim [-stats] [-workers N] [-cache MB] [-trace out.json] <subcommand> [flags]
//
//	volsim table1 [-frames N] [-scale F]
//	volsim fig2a  [-frames N]
//	volsim fig2b  [-frames N]
//	volsim fig3b  [-samples N]
//	volsim fig3d  [-samples N]
//	volsim fig3e  [-samples N]
//	volsim all
//	volsim session  [-users N] [-seconds S] [-multicast] [-custom] [-predictive] [-decode]
//	volsim predeval [-frames N] [-users N]      viewport-prediction accuracy
//	volsim multiap  [-users N] [-points N]      multi-AP spatial reuse sweep
//	volsim ablate   [-users N] [-seconds S]     feature ablation (QoE per feature)
//	volsim gcr                                  reliable-groupcast cost table
//	volsim codec   [-points N]                  position-coder comparison
//
// The global -stats flag dumps the process metrics registry (stage timers,
// counters, per-layer latency histograms) to stderr after the subcommand
// finishes; -workers N sets the parallel pool width (default GOMAXPROCS,
// also settable via VOLCAST_WORKERS; 1 = fully sequential); -cache MB sets
// the content-addressed block cache budget (default 64, also settable via
// VOLCAST_CACHE_MB; 0 disables caching entirely); -trace out.json enables
// the per-frame pipeline tracer and writes the run as Chrome/Perfetto
// trace_event JSON (open in ui.perfetto.dev or chrome://tracing).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"volcast/internal/blockcache"
	"volcast/internal/experiments"
	"volcast/internal/metrics"
	"volcast/internal/obs"
	"volcast/internal/par"
	"volcast/internal/pointcloud"
	"volcast/internal/stream"
	"volcast/internal/trace"
	"volcast/internal/vivo"

	"volcast/internal/cell"
	"volcast/internal/codec"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: volsim [-stats] [-workers N] [-cache MB] [-trace out.json] <table1|fig2a|fig2b|fig3b|fig3d|fig3e|all|session|predeval|multiap|ablate|gcr|codec> [flags]")
	os.Exit(2)
}

// globalFlags strips the pre-subcommand -stats / -workers / -cache /
// -trace flags (the subcommands own their local flag sets) and applies
// them. -trace installs the process tracer, so every layer below starts
// recording spans.
func globalFlags(args []string) (rest []string, stats bool, tracePath string) {
	for len(args) > 0 {
		switch a := args[0]; {
		case a == "-stats" || a == "--stats":
			stats = true
			args = args[1:]
		case a == "-workers" || a == "--workers":
			if len(args) < 2 {
				usage()
			}
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 1 {
				usage()
			}
			par.SetWorkers(n)
			args = args[2:]
		case a == "-cache" || a == "--cache":
			if len(args) < 2 {
				usage()
			}
			mb, err := strconv.Atoi(args[1])
			if err != nil || mb < 0 {
				usage()
			}
			blockcache.SetBudgetMB(mb)
			args = args[2:]
		case a == "-trace" || a == "--trace":
			if len(args) < 2 || args[1] == "" {
				usage()
			}
			tracePath = args[1]
			obs.SetDefault(obs.New(1 << 18))
			args = args[2:]
		default:
			return args, stats, tracePath
		}
	}
	return args, stats, tracePath
}

// writeTrace dumps the process tracer as Perfetto trace_event JSON and
// prints a one-line summary to stderr.
func writeTrace(path string) error {
	tr := obs.Default()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	misses := 0
	reports := tr.Analyze()
	for _, r := range reports {
		if r.Missed {
			misses++
		}
	}
	fmt.Fprintf(os.Stderr, "volsim: trace %s: %d spans held (%d recorded), %d frame rows, %d deadline misses\n",
		path, tr.Len(), tr.Total(), len(reports), misses)
	return nil
}

func main() {
	args, stats, tracePath := globalFlags(os.Args[1:])
	if len(args) < 1 {
		usage()
	}
	cmd, args := args[0], args[1:]
	var err error
	switch cmd {
	case "table1":
		err = runTable1(args)
	case "fig2a":
		err = runFig2a(args)
	case "fig2b":
		err = runFig2b(args)
	case "fig3b":
		err = runFig3b(args)
	case "fig3d":
		err = runFig3d(args)
	case "fig3e":
		err = runFig3e(args)
	case "all":
		err = runAll()
	case "session":
		err = runSession(args)
	case "predeval":
		err = runPredEval(args)
	case "multiap":
		err = runMultiAP(args)
	case "ablate":
		err = runAblate(args)
	case "gcr":
		err = runGCR()
	case "codec":
		err = runCodec(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "volsim:", err)
		os.Exit(1)
	}
	if tracePath != "" {
		if err := writeTrace(tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "volsim: trace:", err)
			os.Exit(1)
		}
	}
	if stats {
		fmt.Fprintf(os.Stderr, "== metrics (%d workers) ==\n%s", par.Workers(), metrics.Default().String())
	}
}

func runTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	frames := fs.Int("frames", 10, "evaluation window in frames")
	scale := fs.Float64("scale", 1.0, "content scale (1.0 = paper's 330K/430K/550K points)")
	seed := fs.Int64("seed", 1, "random seed")
	multicastCol := fs.Bool("multicast", false, "add the proposed system (multicast + custom beams) column")
	fs.Parse(args)
	start := time.Now()
	rows, err := experiments.Table1(experiments.Table1Config{
		Frames: *frames, Seed: *seed, Scale: *scale, MaxADUsers: 7, MaxACUsers: 3,
		WithMulticast: *multicastCol,
	})
	if err != nil {
		return err
	}
	fmt.Println("== Table 1: max achievable FPS, vanilla vs multi-user ViVo ==")
	fmt.Print(experiments.RenderTable1(rows))
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

func runFig2a(args []string) error {
	fs := flag.NewFlagSet("fig2a", flag.ExitOnError)
	frames := fs.Int("frames", 300, "trace length in frames")
	seed := fs.Int64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write the series as CSV to this path")
	fs.Parse(args)
	series, err := experiments.Fig2a(experiments.Fig2Config{Frames: *frames, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 2a: viewport similarity (IoU) over time, 50cm cells ==")
	fmt.Print(experiments.RenderFig2a(series))
	if *csvPath != "" {
		var rows [][]string
		header := []string{"frame"}
		for _, sr := range series {
			header = append(header, fmt.Sprintf("iou_%d_%d", sr.UserA, sr.UserB))
		}
		rows = append(rows, header)
		for f := 0; f < len(series[0].IoU); f++ {
			row := []string{fmt.Sprintf("%d", f)}
			for _, sr := range series {
				row = append(row, fmt.Sprintf("%.4f", sr.IoU[f]))
			}
			rows = append(rows, row)
		}
		return writeCSV(*csvPath, rows)
	}
	return nil
}

// writeCSV dumps rows to path.
func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	fmt.Printf("(wrote %s)\n", path)
	return w.Error()
}

func runFig2b(args []string) error {
	fs := flag.NewFlagSet("fig2b", flag.ExitOnError)
	frames := fs.Int("frames", 300, "trace length in frames")
	seed := fs.Int64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write the raw samples as CSV to this path")
	fs.Parse(args)
	curves, err := experiments.Fig2b(experiments.Fig2Config{Frames: *frames, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 2b: IoU CDFs by device, cell size, group size ==")
	labels := make([]string, len(curves))
	vals := make([][]float64, len(curves))
	for i, c := range curves {
		labels[i], vals[i] = c.Label, c.IoUs
	}
	fmt.Print(experiments.RenderCDF(labels, vals))
	if *csvPath != "" {
		rows := [][]string{{"curve", "iou"}}
		for _, c := range curves {
			for _, v := range c.IoUs {
				rows = append(rows, []string{c.Label, fmt.Sprintf("%.4f", v)})
			}
		}
		return writeCSV(*csvPath, rows)
	}
	return nil
}

func runFig3b(args []string) error {
	fs := flag.NewFlagSet("fig3b", flag.ExitOnError)
	samples := fs.Int("samples", 400, "position samples per curve")
	seed := fs.Int64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write the raw samples as CSV to this path")
	fs.Parse(args)
	curves, err := experiments.Fig3b(experiments.Fig3Config{Samples: *samples, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 3b: common RSS CDF, default codebook, groups of 1/2/3 ==")
	fmt.Print(experiments.RenderFig3b(curves))
	if *csvPath != "" {
		rows := [][]string{{"group_size", "rss_dbm"}}
		for _, c := range curves {
			for _, v := range c.RSS {
				rows = append(rows, []string{fmt.Sprintf("%d", c.GroupSize), fmt.Sprintf("%.2f", v)})
			}
		}
		return writeCSV(*csvPath, rows)
	}
	return nil
}

func runFig3d(args []string) error {
	fs := flag.NewFlagSet("fig3d", flag.ExitOnError)
	samples := fs.Int("samples", 400, "two-user samples")
	seed := fs.Int64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write the paired samples as CSV to this path")
	fs.Parse(args)
	res, err := experiments.Fig3d(experiments.Fig3Config{Samples: *samples, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 3d: common RSS, default vs customized multi-lobe beams ==")
	fmt.Print(experiments.RenderFig3d(res))
	if *csvPath != "" {
		rows := [][]string{{"default_rss_dbm", "custom_rss_dbm"}}
		for i := range res.DefaultRSS {
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", res.DefaultRSS[i]),
				fmt.Sprintf("%.2f", res.CustomRSS[i]),
			})
		}
		return writeCSV(*csvPath, rows)
	}
	return nil
}

func runFig3e(args []string) error {
	fs := flag.NewFlagSet("fig3e", flag.ExitOnError)
	samples := fs.Int("samples", 400, "two-user samples")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	res, err := experiments.Fig3e(experiments.Fig3Config{Samples: *samples, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 3e: normalized throughput, unicast vs multicast ==")
	fmt.Print(experiments.RenderFig3e(res))
	return nil
}

func runAll() error {
	if err := runTable1(nil); err != nil {
		return err
	}
	if err := runFig2a(nil); err != nil {
		return err
	}
	if err := runFig2b(nil); err != nil {
		return err
	}
	if err := runFig3b(nil); err != nil {
		return err
	}
	if err := runFig3d(nil); err != nil {
		return err
	}
	return runFig3e(nil)
}

func runSession(args []string) error {
	fs := flag.NewFlagSet("session", flag.ExitOnError)
	users := fs.Int("users", 4, "concurrent viewers")
	seconds := fs.Float64("seconds", 3, "session length")
	points := fs.Int("points", 100_000, "points per frame")
	multicastOn := fs.Bool("multicast", false, "enable multicast grouping")
	custom := fs.Bool("custom", false, "enable custom multi-lobe beams")
	predictive := fs.Bool("predictive", false, "enable prediction + proactive actions")
	decode := fs.Bool("decode", false, "decode every delivered cell (client render path, shared decode cache)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	gen := obs.Default().Begin(-1, obs.PipelineUser, obs.StageGenerate)
	video := pointcloud.SynthScene(pointcloud.DefaultSceneConfig(30, *points, *seed))
	gen.End()
	b, _ := video.Bounds()
	g, err := cell.NewGrid(b, cell.Size50)
	if err != nil {
		return err
	}
	store, err := vivo.BuildStore(video, g, codec.NewEncoder(codec.DefaultParams()), []int{1, 2, 3, 4})
	if err != nil {
		return err
	}
	study := trace.GenerateStudy(int(*seconds*30)+30, *seed)
	net, err := stream.NewAD()
	if err != nil {
		return err
	}
	mode := stream.ModeViVo
	if *multicastOn {
		mode = stream.ModeMulticast
	}
	sess, err := stream.NewSession(stream.SessionConfig{
		Users: *users, Seconds: *seconds, Mode: mode,
		CustomBeams: *custom, Predictive: *predictive, DecodeClouds: *decode,
		StartQuality: pointcloud.QualityLow,
	}, map[pointcloud.Quality]*vivo.Store{pointcloud.QualityLow: store}, study, net)
	if err != nil {
		return err
	}
	q, err := sess.Run()
	if err != nil {
		return err
	}
	fmt.Printf("session: users=%d mode=%v custom=%v predictive=%v\n", *users, mode, *custom, *predictive)
	fmt.Printf("  avg FPS          %.1f\n", q.AvgFPS)
	fmt.Printf("  stalls           %d (%.2fs)\n", q.Stalls, q.StallSeconds)
	fmt.Printf("  multicast share  %.1f%%\n", q.MulticastShare*100)
	fmt.Printf("  beam switches    %d\n", q.BeamSwitches)
	fmt.Printf("  quality switches %d\n", q.QualitySwitches)
	if *decode {
		reg := metrics.Default()
		hits := reg.Counter("blockcache.decode.hits").Value()
		misses := reg.Counter("blockcache.decode.misses").Value()
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses) * 100
		}
		fmt.Printf("  decode cache     %d hits / %d misses (%.1f%% hit rate)\n", hits, misses, rate)
	}
	return nil
}

func runPredEval(args []string) error {
	fs := flag.NewFlagSet("predeval", flag.ExitOnError)
	frames := fs.Int("frames", 600, "trace length in frames")
	users := fs.Int("users", 8, "users to average over")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	rows, err := experiments.PredEval(*frames, *seed, *users)
	if err != nil {
		return err
	}
	fmt.Println("== Viewport prediction accuracy (mean over users) ==")
	fmt.Print(experiments.RenderPredEval(rows))
	return nil
}

func runMultiAP(args []string) error {
	fs := flag.NewFlagSet("multiap", flag.ExitOnError)
	users := fs.Int("users", 8, "audience size")
	points := fs.Int("points", 200_000, "points per frame")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	rows, err := experiments.MultiAP(*points, *users, *seed)
	if err != nil {
		return err
	}
	fmt.Println("== Multi-AP coordination: uncapped frame rate vs AP count ==")
	fmt.Print(experiments.RenderMultiAP(rows))
	return nil
}

func runAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	users := fs.Int("users", 7, "concurrent viewers")
	seconds := fs.Float64("seconds", 3, "session length")
	points := fs.Int("points", 300_000, "points per frame")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	start := time.Now()
	rows, err := experiments.Ablation(experiments.AblationConfig{
		Users: *users, Seconds: *seconds, Points: *points, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("== Feature ablation: QoE as the cross-layer stack builds up ==")
	fmt.Print(experiments.RenderAblation(rows))
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

func runGCR() error {
	fmt.Println("== Reliable groupcast (802.11aa GCR): airtime vs residual loss ==")
	fmt.Print(experiments.RenderGCR(experiments.GCRSweep()))
	return nil
}

func runCodec(args []string) error {
	fs := flag.NewFlagSet("codec", flag.ExitOnError)
	points := fs.Int("points", 550_000, "points in the measured frame")
	seed := fs.Int64("seed", 1, "content seed")
	fs.Parse(args)
	rows, err := experiments.CodecSweep(*points, *seed)
	if err != nil {
		return err
	}
	fmt.Println("== Codec position-coder comparison (one frame, 50cm cells) ==")
	fmt.Print(experiments.RenderCodec(rows))
	return nil
}
