// Command volplay is the trace-driven volcast player: it connects to a
// volserve instance, streams a synthetic 6DoF viewport, decodes the cells
// it receives and reports playback statistics.
//
// Usage:
//
//	volplay [-addr localhost:7272] [-user 0] [-seconds 5] [-pull [-stride N]]
//	volplay -reconnect                       # survive resets: backoff + resume
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"volcast/internal/trace"
	"volcast/internal/transport"
)

func main() {
	addr := flag.String("addr", "localhost:7272", "server address")
	user := flag.Int("user", 0, "trace user index (0-31)")
	scene := flag.Int("scene", 0, "hub scene (session) to join; 0 is the default scene")
	seconds := flag.Float64("seconds", 5, "playback duration")
	seed := flag.Int64("seed", 1, "trace seed")
	noDecode := flag.Bool("nodecode", false, "skip decoding (bandwidth test)")
	pull := flag.Bool("pull", false, "pull mode: run visibility client-side, request cells explicitly")
	stride := flag.Int("stride", 1, "density stride requested in pull mode")
	reconnect := flag.Bool("reconnect", false, "reconnect with exponential backoff when the connection drops")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "first reconnect delay")
	backoffMax := flag.Duration("backoff-max", 2*time.Second, "reconnect delay cap")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Second, "declare the connection dead after this much silence")
	flag.Parse()

	frames := int(*seconds*30) + 60
	study := trace.GenerateStudy(frames, *seed)
	u := *user
	if u < 0 || u >= study.Users() {
		log.Fatalf("volplay: user %d out of range 0..%d", u, study.Users()-1)
	}

	log.Printf("volplay: user %d (%v) connecting to %s…", u, study.Traces[u].Device, *addr)
	var stats transport.ClientStats
	var err error
	if *pull {
		stats, err = transport.RunPullClient(context.Background(), transport.PullClientConfig{
			Addr: *addr, ID: uint32(u), Scene: uint32(*scene),
			Trace:    study.Traces[u],
			Duration: time.Duration(*seconds * float64(time.Second)),
			Stride:   uint8(*stride),
			Decode:   !*noDecode,
		})
	} else {
		stats, err = transport.RunClient(context.Background(), transport.ClientConfig{
			Addr: *addr, ID: uint32(u), Name: fmt.Sprintf("volplay-%d", u),
			Scene:       uint32(*scene),
			Trace:       study.Traces[u],
			Duration:    time.Duration(*seconds * float64(time.Second)),
			Decode:      !*noDecode,
			Reconnect:   *reconnect,
			BackoffBase: *backoff,
			BackoffMax:  *backoffMax,
			IdleTimeout: *idleTimeout,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frames received    %d (%.1f FPS)\n", stats.Frames, stats.AvgFPS)
	fmt.Printf("cells / bytes      %d / %.2f MB\n", stats.Cells, float64(stats.Bytes)/1e6)
	fmt.Printf("multicast bytes    %.2f MB (%.0f%%)\n",
		float64(stats.MulticastBytes)/1e6, pct(stats.MulticastBytes, stats.Bytes))
	fmt.Printf("decoded points     %d (errors: %d)\n", stats.Points, stats.DecodeErrors)
	fmt.Printf("poses sent         %d\n", stats.PosesSent)
	if stats.Reconnects > 0 || stats.HeartbeatMisses > 0 || stats.FramesDropped > 0 {
		fmt.Printf("fault recovery     %d reconnects, %d heartbeat misses, %d frames dropped\n",
			stats.Reconnects, stats.HeartbeatMisses, stats.FramesDropped)
	}
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
