// Command volserve runs the volcast TCP content server: a multi-tenant
// session hub that hosts up to -scenes concurrent scenes, synthesizes (or
// loads) each scene's volumetric video on its first join, encodes it
// through the hub-wide shared cache tier, and streams viewport-adapted
// cell bursts to every connected volplay client of that scene.
//
// Usage:
//
//	volserve [-addr :7272] [-frames 90] [-points 100000] [-performers 3] [-vanilla]
//	volserve -scenes 64 -scene-seed-stride 0  # many scenes, identical content
//	volserve -load content.vcstor             # serve pre-encoded content (volpack)
//	volserve -debug-addr :7273                # live /metrics, /trace, /qoe, pprof
//	volserve -chaos-seed 42 -chaos-reset 0.5  # deterministic fault injection
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"net"

	"volcast/internal/blockcache"
	"volcast/internal/cell"
	"volcast/internal/codec"
	"volcast/internal/faultnet"
	"volcast/internal/hub"
	"volcast/internal/metrics"
	"volcast/internal/obs"
	"volcast/internal/par"
	"volcast/internal/pointcloud"
	"volcast/internal/vivo"
)

func main() {
	addr := flag.String("addr", ":7272", "listen address")
	frames := flag.Int("frames", 90, "video frames per scene (looped)")
	points := flag.Int("points", 100_000, "points per frame")
	performers := flag.Int("performers", 3, "humanoids on stage")
	vanilla := flag.Bool("vanilla", false, "disable visibility optimizations")
	seed := flag.Int64("seed", 1, "content seed for scene 0")
	scenes := flag.Int("scenes", 16, "max concurrent scenes (sessions); each is built on first join and reaped when idle")
	seedStride := flag.Int64("scene-seed-stride", 1, "scene k synthesizes with seed+k*stride; 0 makes every scene identical content, maximizing shared encode-tier hits")
	reapAfter := flag.Duration("reap-after", 10*time.Second, "grace before an empty scene is reaped (negative = never)")
	load := flag.String("load", "", "serve a pre-encoded .vcstor container instead of synthesizing (every scene shares it)")
	workers := flag.Int("workers", 0, "parallel pool width (0 = VOLCAST_WORKERS or GOMAXPROCS, 1 = sequential)")
	cacheMB := flag.Int("cache", -1, "hub-wide block cache budget in MB, shared by ALL scenes — one budget for the whole process, not per-session (-1 = VOLCAST_CACHE_MB or 64, 0 = disabled)")
	statsEvery := flag.Duration("stats", 30*time.Second, "metrics log interval (0 disables)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /trace, /qoe and pprof on this address (enables the pipeline tracer)")
	heartbeat := flag.Duration("hb", time.Second, "heartbeat Ping interval (negative disables)")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop clients with no readable traffic for this long (0 = 4×hb)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Second, "graceful drain budget on shutdown")
	chaosSeed := flag.Int64("chaos-seed", 0, "enable deterministic fault injection with this seed (0 = off); same seed ⇒ same per-connection fault schedule")
	chaosReset := flag.Float64("chaos-reset", 0.5, "chaos: per-connection probability of a mid-stream reset")
	chaosResetKB := flag.Int64("chaos-reset-kb", 512, "chaos: mean KB of traffic before a scheduled reset fires")
	chaosStallEvery := flag.Int("chaos-stall-every", 0, "chaos: stall every Nth read (0 = never)")
	chaosStallDur := flag.Duration("chaos-stall", 30*time.Millisecond, "chaos: injected read-stall duration")
	chaosBwMbps := flag.Float64("chaos-bw", 0, "chaos: per-connection bandwidth cap in Mbps (0 = uncapped)")
	chaosLatency := flag.Duration("chaos-latency", 0, "chaos: added latency per socket op")
	chaosAcceptFail := flag.Int("chaos-accept-fail", 0, "chaos: fail every Nth accept once (0 = never)")
	sloP99 := flag.Float64("slo-p99", 33, "SLO: windowed p99 frame latency ceiling in ms (0 = unchecked)")
	sloMissRate := flag.Float64("slo-missrate", 0.05, "SLO: windowed deadline-miss rate ceiling (0 = unchecked)")
	sloMinSamples := flag.Int64("slo-min-samples", 30, "SLO: minimum windowed frames+misses before a scene is evaluated")
	sloEvery := flag.Duration("slo-every", time.Second, "SLO: evaluation interval (negative disables the evaluator)")
	sloRecoverAfter := flag.Int("slo-recover-after", 3, "SLO: consecutive healthy evaluations before a breached scene recovers")
	flightDir := flag.String("flight-dir", "flightdumps", "directory for breach-triggered flight dumps (empty disables the recorder)")
	flightMax := flag.Int("flight-max", 8, "max flight dumps retained on disk (oldest pruned)")
	flightInterval := flag.Duration("flight-interval", 10*time.Second, "min interval between flight captures (extra breaches are suppressed)")
	flag.Parse()
	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	// One call, one budget: the shared cache tier spans every scene the
	// hub hosts, so -cache bounds total cache memory for the process no
	// matter how many sessions come and go.
	blockcache.SetBudgetMB(*cacheMB)
	if *debugAddr != "" {
		// The tracer rides along with the debug endpoint: installing it
		// process-wide makes every layer (store build, push loop, writers)
		// record spans that /trace and /qoe then serve live.
		obs.SetDefault(obs.New(1 << 17))
	}

	// newStore builds one scene's content on its first join. The blocks
	// argument is the scene's labeled view of the hub-wide shared encode
	// tier: overlapping content across scenes (same seed ⇒ identical
	// blocks) encodes once, and /metrics splits the hits per scene.
	var shared *vivo.Store
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		shared, err = vivo.ReadStore(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("volserve: loaded %s (%d frames, %.0f KB/frame, %.0f Mbps at 30 FPS) — all scenes share it",
			*load, shared.NumFrames(), shared.AvgFrameBytes()/1e3,
			codec.BitrateMbps(shared.AvgFrameBytes(), 30))
	}
	newStore := func(scene uint32, blocks codec.BlockCache) (*vivo.Store, error) {
		if shared != nil {
			return shared, nil
		}
		sceneSeed := *seed + int64(scene)**seedStride
		log.Printf("volserve: scene %d: generating %d frames × %d points (seed %d)…",
			scene, *frames, *points, sceneSeed)
		gen := obs.Default().Begin(-1, obs.PipelineUser, obs.StageGenerate)
		var video *pointcloud.Video
		if *performers <= 1 {
			video = pointcloud.SynthVideo(pointcloud.SynthConfig{
				Frames: *frames, FPS: 30, PointsPerFrame: *points, Seed: sceneSeed, Sway: 1,
			})
		} else {
			video = pointcloud.SynthScene(pointcloud.DefaultSceneConfig(*frames, *points, sceneSeed))
		}
		gen.End()
		b, ok := video.Bounds()
		if !ok {
			return nil, fmt.Errorf("scene %d: empty video", scene)
		}
		g, err := cell.NewGrid(b, cell.Size50)
		if err != nil {
			return nil, err
		}
		enc := codec.NewEncoder(codec.DefaultParams())
		if blocks != nil {
			enc = enc.Cached(blocks)
		}
		store, err := vivo.BuildStore(video, g, enc, []int{1, 2, 3, 4})
		if err != nil {
			return nil, err
		}
		log.Printf("volserve: scene %d: %d frames, %.0f KB/frame, %.0f Mbps at 30 FPS",
			scene, store.NumFrames(), store.AvgFrameBytes()/1e3,
			codec.BitrateMbps(store.AvgFrameBytes(), 30))
		return store, nil
	}

	// The SLO plane: every session's windowed QoE is evaluated against one
	// declarative target set; transitions land on the event log, and fresh
	// breaches snapshot the tracer ring to a flight dump on disk.
	events := obs.NewEventLog(1024)
	var flight *obs.FlightRecorder
	if *flightDir != "" {
		flight = obs.NewFlightRecorder(*flightDir, obs.Default(), *flightMax, *flightInterval)
	}
	engine := obs.NewSLOEngine(obs.SLOTargets{
		P99MaxMS:     *sloP99,
		MissRateMax:  *sloMissRate,
		MinSamples:   *sloMinSamples,
		RecoverAfter: *sloRecoverAfter,
	}, events, flight)

	h, err := hub.New(hub.Config{
		NewStore:       newStore,
		Vanilla:        *vanilla,
		HeartbeatEvery: *heartbeat,
		IdleTimeout:    *idleTimeout,
		DrainTimeout:   *drainTimeout,
		ReapAfter:      *reapAfter,
		MaxSessions:    *scenes,
		Events:         events,
		SLO:            engine,
		SLOEvery:       *sloEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	serveLn := net.Listener(ln)
	if *chaosSeed != 0 {
		// Every accepted connection draws its fault schedule from the
		// seed: reproduce a failing run by re-serving with the same seed
		// and the same client arrival order.
		kb := *chaosResetKB
		if kb < 2 {
			kb = 2
		}
		serveLn = faultnet.NewListener(ln, faultnet.Config{
			Seed:            *chaosSeed,
			Latency:         *chaosLatency,
			BandwidthBps:    int64(*chaosBwMbps * 1e6 / 8),
			ResetProb:       *chaosReset,
			ResetAfterBytes: [2]int64{kb << 9, kb << 10 * 3 / 2}, // [mean/2, mean*1.5)
			StallEvery:      *chaosStallEvery,
			StallDur:        *chaosStallDur,
			AcceptFailEvery: *chaosAcceptFail,
		})
		log.Printf("volserve: CHAOS enabled (seed %d): reset p=%.2f @~%dKB, stall 1/%d×%v, bw %.1f Mbps, accept-fail 1/%d",
			*chaosSeed, *chaosReset, kb, *chaosStallEvery, *chaosStallDur, *chaosBwMbps, *chaosAcceptFail)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- h.Serve(serveLn) }()
	log.Printf("volserve: listening on %s (up to %d scenes, %d workers); scenes build on first join",
		ln.Addr(), *scenes, par.Workers())

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr: *debugAddr,
			// UserLabel turns bare tracer user ids into scene<N>/<client>
			// rows so /qoe stays readable with many sessions.
			Handler: obs.NewDebugMux(obs.DebugConfig{
				UserLabel: h.SubscriberLabel,
				Sessions:  h.SessionInfos,
				SLO:       engine,
				Events:    events,
			}),
		}
		go func() {
			log.Printf("volserve: debug endpoint on %s (/metrics /metrics/prom /sessions /slo /events /trace /qoe /debug/pprof/)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("volserve: debug endpoint: %v", err)
			}
		}()
	}

	// Stats logger: a stoppable ticker (a bare time.Tick would leak past
	// shutdown) reporting per-interval deltas — rates, not lifetime totals.
	stopStats := make(chan struct{})
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		if *statsEvery <= 0 {
			return
		}
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		prev := metrics.Default().Snapshot()
		for {
			select {
			case <-stopStats:
				return
			case <-ticker.C:
			}
			cur := metrics.Default().Snapshot()
			if s := cur.Delta(prev).String(); s != "" {
				log.Printf("volserve: metrics (last %v; %d scenes, %d clients)\n%s",
					*statsEvery, h.NumSessions(), h.NumClients(), s)
			}
			prev = cur
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Println()
		log.Printf("volserve: %v — shutting down %d scenes", s, h.NumSessions())
		close(stopStats)
		<-statsDone
		if debugSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			debugSrv.Shutdown(ctx)
			cancel()
		}
		h.Shutdown()
	case err := <-errCh:
		if err != nil {
			log.Fatal(err)
		}
	}
}
