// Command benchjson converts `go test -bench` text output into a JSON
// benchmark report. It reads the benchmark run on stdin, echoes it through
// to stderr (so the run stays visible), and writes the parsed results to
// -out (default stdout). `make bench` uses it to snapshot BENCH_<date>.json
// files that can be diffed across commits.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -out BENCH_2026-08-06.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any additional ReportMetric units (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the written file.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one `BenchmarkName-P  N  v unit  v unit...` line;
// ok is false for non-benchmark lines.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	return b, seen
}

// mergeInto unions rep into an existing report document, keeping any
// top-level keys it does not understand (e.g. the "loadtest" latency
// section volload merges in) and replacing benchmarks by name — so one
// BENCH_<date>.json can accumulate benchmark runs and load-test
// percentiles from separate invocations without either clobbering the
// other.
func mergeInto(existing []byte, rep Report) ([]byte, error) {
	doc := map[string]any{}
	if len(existing) > 0 {
		if err := json.Unmarshal(existing, &doc); err != nil {
			return nil, fmt.Errorf("existing report: %w", err)
		}
	}
	merged := []any{}
	replaced := map[string]bool{}
	for _, b := range rep.Benchmarks {
		replaced[b.Name] = true
	}
	if prior, ok := doc["benchmarks"].([]any); ok {
		for _, e := range prior {
			if m, ok := e.(map[string]any); ok {
				if name, _ := m["name"].(string); replaced[name] {
					continue // superseded by this run
				}
			}
			merged = append(merged, e)
		}
	}
	for _, b := range rep.Benchmarks {
		merged = append(merged, b)
	}
	doc["benchmarks"] = merged
	doc["date"] = rep.Date
	doc["go_version"] = rep.GoVersion
	doc["goos"] = rep.GOOS
	doc["goarch"] = rep.GOARCH
	return json.MarshalIndent(doc, "", "  ")
}

func main() {
	out := flag.String("out", "", "write the JSON report to this path (default stdout)")
	merge := flag.Bool("merge", false, "merge into an existing -out report instead of replacing it (unions benchmarks by name, keeps unknown top-level keys)")
	flag.Parse()

	rep := Report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		// Zero parsed benchmarks means the piped run failed or benched
		// nothing; failing here keeps `make bench` honest despite the pipe.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	var data []byte
	var err error
	if *merge && *out != "" {
		existing, rerr := os.ReadFile(*out)
		if rerr != nil && !os.IsNotExist(rerr) {
			fmt.Fprintln(os.Stderr, "benchjson:", rerr)
			os.Exit(1)
		}
		data, err = mergeInto(existing, rep)
	} else {
		data, err = json.MarshalIndent(rep, "", "  ")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
