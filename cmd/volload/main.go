// Command volload is the trace-driven load generator for the session
// hub: it drives hundreds to thousands of synthetic volcast clients —
// spread across N scenes, with optional join/leave churn and seeded
// faultnet faults — against one server process, and emits a JSON report
// (sessions, clients, frames, p50/p95/p99 frame latency, cache hit rate,
// drops) so the multi-user scale claim lands in a number.
//
// By default it self-hosts a hub over TCP loopback in the same process,
// which is what makes the cross-session encode-cache hit rate observable
// in the report (the cache counters live in the process registry). Point
// it at an external volserve with -addr; cache stats are then reported
// as unavailable.
//
// Usage:
//
//	volload -sessions 4 -clients 64 -duration 10s        # self-hosted smoke
//	volload -clients 500 -sessions 8 -churn-every 2s     # churn at scale
//	volload -fault-reset 0.3 -load-seed 7                # seeded chaos
//	volload -addr host:7272                              # external server
//	volload -out report.json -merge BENCH_2026-08-08.json
//	volload -cap-scene 1 -cap-mbps 0.25 -flight-dir /tmp/fl \
//	        -debug-addr 127.0.0.1:0 -min-breaches 1      # SLO-plane smoke
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"volcast/internal/blockcache"
	"volcast/internal/cell"
	"volcast/internal/codec"
	"volcast/internal/faultnet"
	"volcast/internal/hub"
	"volcast/internal/metrics"
	"volcast/internal/obs"
	"volcast/internal/pointcloud"
	"volcast/internal/trace"
	"volcast/internal/transport"
	"volcast/internal/vivo"
)

// report is the JSON document volload emits; the schema is consumed by
// the BENCH_*.json trajectory (merged under the "loadtest" key).
type report struct {
	Sessions   int     `json:"sessions"`
	Clients    int     `json:"clients"`
	Joins      int64   `json:"joins"`
	Reconnects int64   `json:"reconnects"`
	DurationS  float64 `json:"duration_s"`
	LoadSeed   int64   `json:"load_seed"`
	ChurnEvery string  `json:"churn_every,omitempty"`

	Frames        int64 `json:"frames"`
	Cells         int64 `json:"cells"`
	Bytes         int64 `json:"bytes"`
	FramesDropped int64 `json:"frames_dropped"`
	DecodeErrors  int64 `json:"decode_errors"`
	ClientErrors  int64 `json:"client_errors"`

	Latency latencyStats `json:"frame_latency_ms"`

	DropsEnqueue    int64 `json:"drops_enqueue"`
	DropsSlowClient int64 `json:"drops_slowclient"`

	// Cache is nil when the server runs out-of-process (-addr): its
	// registry is not reachable from here.
	Cache *cacheStats `json:"cache,omitempty"`

	// Layers is the layered-serving readout (deltas received, bytes a
	// full re-send would have cost); nil unless -layers or -probe-upgrade
	// put the layered path on the wire.
	Layers *layerStats `json:"layers,omitempty"`

	// SLO is the per-session SLO readout: breach counts from the engine
	// (self-host) or from -debug-addr /sessions scrapes (external), plus
	// the scrape-observed windowed-quantile liveness. Nil when neither
	// source is available.
	SLO *sloReport `json:"slo,omitempty"`

	GoroutinesStart int  `json:"goroutines_start"`
	GoroutinesEnd   int  `json:"goroutines_end"`
	Hung            bool `json:"hung"`
}

type latencyStats struct {
	Samples int     `json:"samples"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
	Max     float64 `json:"max"`
}

type cacheStats struct {
	EncodeHits   int64   `json:"encode_hits"`
	EncodeMisses int64   `json:"encode_misses"`
	HitRate      float64 `json:"hit_rate"`
	// PerSession maps scene label → hits/misses against the shared
	// encode tier, the cross-session sharing evidence.
	PerSession map[string]hitMiss `json:"per_session,omitempty"`
}

type hitMiss struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// layerStats aggregates the enhancement-delta accounting across the push
// fleet and the -probe-upgrade pull probes: DeltaBytes went on the wire,
// DeltaFullBytes is what re-sending those cells whole would have cost.
type layerStats struct {
	Probes         int     `json:"probes,omitempty"`
	ProbeFrames    int64   `json:"probe_frames,omitempty"`
	ProbeDropped   int64   `json:"probe_dropped,omitempty"`
	ProbeCells     int64   `json:"probe_cells,omitempty"`
	DeltaCells     int64   `json:"delta_cells"`
	DeltaBytes     int64   `json:"delta_bytes"`
	DeltaFullBytes int64   `json:"delta_full_bytes"`
	SavingsFrac    float64 `json:"savings_frac"`
}

// sloReport lands in the JSON report (and is merged into BENCH under
// "slo"): the per-session breach counts plus what the /sessions scrapes
// observed during the run.
type sloReport struct {
	Targets       *obs.SLOTargets       `json:"targets,omitempty"`
	Scrapes       int                   `json:"scrapes"`
	QuantilesLive bool                  `json:"quantiles_live"`
	BreachesTotal int64                 `json:"breaches_total"`
	PerSession    map[string]sessionSLO `json:"per_session,omitempty"`
	FlightDumps   int                   `json:"flight_dumps"`
	FlightDir     string                `json:"flight_dir,omitempty"`
}

type sessionSLO struct {
	Breached     bool    `json:"breached"`
	Breaches     int64   `json:"breaches"`
	WindowFrames int64   `json:"window_frames"`
	WindowMisses int64   `json:"window_misses"`
	P99MS        float64 `json:"p99_ms"`
}

// scraper polls a debug endpoint's /sessions table during the run and
// tracks whether the windowed quantiles are actually live (changing
// between scrapes while traffic flows).
type scraper struct {
	mu            sync.Mutex
	scrapes       int
	quantilesLive bool
	prev          map[string]obs.SessionInfo
	last          []obs.SessionInfo
}

func (sc *scraper) poll(base string) {
	resp, err := http.Get(base + "/sessions?format=json")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var rows []obs.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.scrapes++
	sc.last = rows
	cur := make(map[string]obs.SessionInfo, len(rows))
	for _, row := range rows {
		cur[row.Scene] = row
		p, ok := sc.prev[row.Scene]
		if !ok || p.WindowFrames == 0 || row.WindowFrames == 0 {
			continue
		}
		if p.P50MS != row.P50MS || p.P95MS != row.P95MS || p.P99MS != row.P99MS {
			sc.quantilesLive = true
		}
	}
	sc.prev = cur
}

func main() {
	addr := flag.String("addr", "", "external server address (empty = self-host a hub over loopback; required for cache stats)")
	sessions := flag.Int("sessions", 4, "scenes to spread clients across")
	clients := flag.Int("clients", 64, "concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	churnEvery := flag.Duration("churn-every", 0, "make each client leave and rejoin about this often (0 = stay connected; jittered ±50% per client)")
	loadSeed := flag.Int64("load-seed", 1, "seed for traces, churn jitter and fault schedules — same seed ⇒ same run shape")
	decode := flag.Bool("decode", false, "fully decode received cells (CPU-heavy at scale)")
	frames := flag.Int("frames", 30, "self-host: video frames per scene (looped)")
	points := flag.Int("points", 4000, "self-host: points per frame")
	performers := flag.Int("performers", 1, "self-host: humanoids on stage")
	seed := flag.Int64("seed", 1, "self-host: content seed for scene 0")
	seedStride := flag.Int64("scene-seed-stride", 0, "self-host: scene k content seed = seed+k*stride; 0 = identical content in every scene (maximal cross-session cache sharing)")
	cacheMB := flag.Int("cache", -1, "self-host: hub-wide shared cache budget in MB (-1 = VOLCAST_CACHE_MB or 64)")
	faultReset := flag.Float64("fault-reset", 0, "per-connection probability of a mid-stream reset (client-side faultnet)")
	faultResetKB := flag.Int64("fault-reset-kb", 256, "mean KB before a scheduled reset fires")
	faultLatency := flag.Duration("fault-latency", 0, "added latency per socket op")
	faultStallEvery := flag.Int("fault-stall-every", 0, "stall every Nth read (0 = never)")
	faultStallDur := flag.Duration("fault-stall", 20*time.Millisecond, "injected read-stall duration")
	fps := flag.Int("fps", 0, "self-host: override every scene's frame rate (0 = store rate)")
	queueDepth := flag.Int("queue-depth", 0, "self-host: per-subscriber outbound queue capacity (0 = hub default)")
	capScene := flag.Int("cap-scene", -1, "link-cap this scene's clients at -cap-mbps via a client-side faultnet bandwidth cap — the TCP-path analogue of the sim path's LinkCapMbps (-1 = none)")
	capMbps := flag.Float64("cap-mbps", 0.25, "bandwidth cap in Mbps for -cap-scene clients")
	debugAddr := flag.String("debug-addr", "", "debug endpoint to scrape /sessions from during the run; when self-hosting, volload serves the debug mux itself on this address (127.0.0.1:0 picks a free port)")
	scrapeEvery := flag.Duration("scrape-every", time.Second, "interval between /sessions scrapes (needs -debug-addr)")
	sloP99 := flag.Float64("slo-p99", 33, "self-host SLO: windowed p99 frame latency ceiling in ms (0 = unchecked)")
	sloMissRate := flag.Float64("slo-missrate", 0.05, "self-host SLO: windowed deadline-miss rate ceiling (0 = unchecked)")
	sloMinSamples := flag.Int64("slo-min-samples", 30, "self-host SLO: minimum windowed frames+misses before a scene is evaluated")
	sloEvery := flag.Duration("slo-every", time.Second, "self-host SLO: evaluation interval (negative disables)")
	sloRecoverAfter := flag.Int("slo-recover-after", 3, "self-host SLO: consecutive healthy evaluations before a breached scene recovers")
	flightDir := flag.String("flight-dir", "", "self-host: breach flight-dump directory (empty = recorder disabled)")
	flightMax := flag.Int("flight-max", 8, "self-host: max flight dumps retained")
	flightInterval := flag.Duration("flight-interval", 10*time.Second, "self-host: min interval between flight captures")
	layersOn := flag.Bool("layers", false, "push clients advertise layered serving, so density upgrades arrive as enhancement-only deltas")
	probeUpgrade := flag.Bool("probe-upgrade", false, "run one layered pull probe per scene that requests a coarse rung for the first half of the run, then flips to full density — a deterministic tier upgrade that must arrive as enhancement-only deltas")
	probeStride := flag.Int("probe-stride", 2, "coarse rung the -probe-upgrade probes start at")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	merge := flag.String("merge", "", "merge the report into this benchjson BENCH_*.json (created if absent) under -merge-key")
	mergeKey := flag.String("merge-key", "loadtest", "top-level key the report is merged under in the -merge file")
	minFrames := flag.Int64("min-frames", 1, "exit nonzero unless at least this many frames completed in total")
	maxP50 := flag.Float64("max-p50", 0, "exit nonzero when p50 frame latency exceeds this many ms (0 = no gate)")
	maxP95 := flag.Float64("max-p95", 0, "exit nonzero when p95 frame latency exceeds this many ms (0 = no gate)")
	maxP99 := flag.Float64("max-p99", 0, "exit nonzero when p99 frame latency exceeds this many ms (0 = no gate)")
	minDeltaCells := flag.Int64("min-delta-cells", -1, "exit nonzero unless at least this many cells arrived as enhancement-only deltas AND their wire bytes undercut a full re-send (-1 = no gate)")
	minCacheHits := flag.Int64("min-cache-hits", -1, "exit nonzero unless the self-host encode tier recorded at least this many hits (-1 = no gate)")
	minBreaches := flag.Int64("min-breaches", -1, "exit nonzero unless total SLO breaches >= this (-1 = no gate)")
	maxBreaches := flag.Int64("max-breaches", -1, "exit nonzero when total SLO breaches > this (-1 = no gate)")
	requireLiveQuantiles := flag.Bool("require-live-quantiles", false, "exit nonzero unless the scraped windowed quantiles changed across two scrapes")
	flag.Parse()
	if *sessions < 1 || *clients < 1 {
		log.Fatal("volload: need -sessions >= 1 and -clients >= 1")
	}

	goroutinesStart := runtime.NumGoroutine()
	rep := report{
		Sessions:        *sessions,
		Clients:         *clients,
		LoadSeed:        *loadSeed,
		GoroutinesStart: goroutinesStart,
	}
	if *churnEvery > 0 {
		rep.ChurnEvery = churnEvery.String()
	}

	// Self-host a hub unless pointed at an external server. The self-host
	// path carries the full SLO plane — event log, SLO engine, flight
	// recorder — so a single volload run can gate breach behavior end to
	// end (make slo-smoke).
	var h *hub.Hub
	var engine *obs.SLOEngine
	var flight *obs.FlightRecorder
	target := *addr
	scrapeBase := ""
	if target == "" {
		blockcache.SetBudgetMB(*cacheMB)
		tracer := obs.New(1 << 16)
		events := obs.NewEventLog(1024)
		if *flightDir != "" {
			flight = obs.NewFlightRecorder(*flightDir, tracer, *flightMax, *flightInterval)
		}
		engine = obs.NewSLOEngine(obs.SLOTargets{
			P99MaxMS:     *sloP99,
			MissRateMax:  *sloMissRate,
			MinSamples:   *sloMinSamples,
			RecoverAfter: *sloRecoverAfter,
		}, events, flight)
		var err error
		h, err = hub.New(hub.Config{
			NewStore:    sceneFactory(*frames, *points, *performers, *seed, *seedStride),
			MaxSessions: *sessions,
			ReapAfter:   -1, // sessions live for the whole run
			FPS:         *fps,
			QueueDepth:  *queueDepth,
			Trace:       tracer,
			Events:      events,
			SLO:         engine,
			SLOEvery:    *sloEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		ready := make(chan string, 1)
		go func() {
			if err := h.ListenAndServe("127.0.0.1:0", ready); err != nil {
				log.Fatalf("volload: hub: %v", err)
			}
		}()
		target = <-ready
		log.Printf("volload: self-hosted hub on %s", target)
		if *debugAddr != "" {
			// Serve the same debug mux volserve would, so the scrape path
			// below exercises the real /sessions HTTP surface rather than
			// reading the hub in-process.
			ln, err := net.Listen("tcp", *debugAddr)
			if err != nil {
				log.Fatalf("volload: debug listener: %v", err)
			}
			debugSrv := &http.Server{Handler: obs.NewDebugMux(obs.DebugConfig{
				Tracer:    tracer,
				UserLabel: h.SubscriberLabel,
				Sessions:  h.SessionInfos,
				SLO:       engine,
				Events:    events,
			})}
			go debugSrv.Serve(ln)
			defer debugSrv.Close()
			scrapeBase = "http://" + ln.Addr().String()
			log.Printf("volload: debug endpoint on %s", ln.Addr())
		}
	} else if *debugAddr != "" {
		scrapeBase = "http://" + *debugAddr
	}

	// Link cap: clients of -cap-scene dial through a bandwidth-capped
	// faultnet wrapper, the socket-layer twin of the sim path's
	// LinkCapMbps — the pinned way to starve exactly one session.
	var capDialer *faultnet.Dialer
	if *capScene >= 0 && *capMbps > 0 {
		capDialer = faultnet.NewDialer(faultnet.Config{
			Seed:         *loadSeed,
			BandwidthBps: int64(*capMbps * 1e6 / 8),
		})
		log.Printf("volload: scene %d link-capped at %.2f Mbps", *capScene, *capMbps)
	}

	// Pose streams: the study cohort's real-motion traces, one per
	// client round-robin, so viewports overlap the way the paper's user
	// study says they do (that overlap is what the multicast marking and
	// the shared fan-out buffers exploit).
	study := trace.GenerateStudy(int(duration.Seconds()*30)+60, *loadSeed)

	var dialer *faultnet.Dialer
	if *faultReset > 0 || *faultLatency > 0 || *faultStallEvery > 0 {
		kb := *faultResetKB
		if kb < 2 {
			kb = 2
		}
		dialer = faultnet.NewDialer(faultnet.Config{
			Seed:            *loadSeed,
			Latency:         *faultLatency,
			ResetProb:       *faultReset,
			ResetAfterBytes: [2]int64{kb << 9, kb << 10 * 3 / 2},
			StallEvery:      *faultStallEvery,
			StallDur:        *faultStallDur,
		})
		log.Printf("volload: client-side faults enabled (seed %d): reset p=%.2f @~%dKB, stall 1/%d×%v, latency %v",
			*loadSeed, *faultReset, kb, *faultStallEvery, *faultStallDur, *faultLatency)
	}

	log.Printf("volload: driving %d clients across %d sessions for %v…", *clients, *sessions, *duration)
	start := time.Now()
	deadline := start.Add(*duration)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	// Per-client accumulators; merged single-threaded after the fleet
	// lands, so the hot path takes no shared locks.
	latencies := make([][]float64, *clients)
	stats := make([]transport.ClientStats, *clients)
	joins := make([]int64, *clients)
	errs := make([]int64, *clients)

	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*loadSeed*1_000_003 + int64(i)))
			// Stagger arrivals across the first second so a 500-client
			// fleet does not land as one accept burst.
			select {
			case <-time.After(time.Duration(rng.Int63n(int64(time.Second)))):
			case <-ctx.Done():
				return
			}
			cfg := transport.ClientConfig{
				Addr:      target,
				ID:        uint32(i + 1),
				Name:      fmt.Sprintf("load%d", i),
				Scene:     uint32(i % *sessions),
				Trace:     study.Traces[i%len(study.Traces)],
				Decode:    *decode,
				Layers:    *layersOn,
				Reconnect: true,
				OnFrameLatency: func(d time.Duration) {
					latencies[i] = append(latencies[i], float64(d)/float64(time.Millisecond))
				},
			}
			wrap, capped := dialer, false
			if capDialer != nil && i%*sessions == *capScene {
				wrap, capped = capDialer, true
			}
			if wrap != nil {
				cfg.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
					d := net.Dialer{Timeout: 5 * time.Second}
					conn, err := d.DialContext(ctx, "tcp", addr)
					if err != nil {
						return nil, err
					}
					if capped {
						// A tiny kernel receive buffer makes the paced reads
						// jam the sender's TCP window within a frame or two
						// instead of after megabytes of kernel buffering.
						if tc, ok := conn.(*net.TCPConn); ok {
							tc.SetReadBuffer(2048)
						}
					}
					return wrap.Wrap(conn), nil
				}
			}
			for {
				left := time.Until(deadline)
				if left <= 50*time.Millisecond {
					return
				}
				cfg.Duration = left
				if *churnEvery > 0 {
					// Jittered session length: leave, pause a beat, rejoin
					// as a fresh connection — the lifecycle churn that
					// exercises session reap/rebuild under load.
					stay := *churnEvery/2 + time.Duration(rng.Int63n(int64(*churnEvery)))
					if stay < left {
						cfg.Duration = stay
					}
				}
				joins[i]++
				s, err := transport.RunClient(ctx, cfg)
				stats[i].Frames += s.Frames
				stats[i].Cells += s.Cells
				stats[i].Bytes += s.Bytes
				stats[i].DecodeErrors += s.DecodeErrors
				stats[i].FramesDropped += s.FramesDropped
				stats[i].Reconnects += s.Reconnects
				if err != nil {
					errs[i]++
				}
				if *churnEvery == 0 && err == nil {
					return // stayed for the whole run
				}
				select {
				case <-time.After(time.Duration(rng.Int63n(int64(100 * time.Millisecond)))):
				case <-ctx.Done():
					return
				}
			}
		}(i)
	}

	// Tier-upgrade probes: one layered pull client per scene holds a
	// coarse prefix for the first half of the run, then requests full
	// density — with looped static content the upgrade must come back as
	// enhancement-only deltas, the scenario make layer-smoke gates.
	var probeMu sync.Mutex
	var probeStats []transport.ClientStats
	var probeErrs int64
	if *probeUpgrade {
		fpsEff := *fps
		if fpsEff <= 0 {
			fpsEff = 30
		}
		// Flip after one second of content frames, not at half-duration: a
		// probe pacing below the content rate under load still reaches the
		// flip with most of the run left to ship and verify the deltas.
		flip := uint32(fpsEff)
		coarse := uint8(*probeStride)
		for s := 0; s < *sessions; s++ {
			wg.Add(1)
			go func(scene int) {
				defer wg.Done()
				ps, err := transport.RunPullClient(ctx, transport.PullClientConfig{
					Addr:     target,
					ID:       uint32(10_000 + scene),
					Scene:    uint32(scene),
					Trace:    study.Traces[scene%len(study.Traces)],
					Duration: *duration,
					Stride:   coarse,
					Decode:   true,
					Layers:   true,
					StrideAt: func(frame uint32) uint8 {
						if frame >= flip {
							return 1
						}
						return coarse
					},
				})
				probeMu.Lock()
				probeStats = append(probeStats, ps)
				if err != nil {
					probeErrs++
				}
				probeMu.Unlock()
			}(s)
		}
		log.Printf("volload: %d layered upgrade probes, stride %d → 1 at frame %d", *sessions, *probeStride, flip)
	}

	// Scrape loop: poll /sessions during the run so the report can attest
	// that the windowed quantiles are live, not frozen lifetime numbers.
	sc := &scraper{}
	scrapeDone := make(chan struct{})
	if scrapeBase != "" {
		go func() {
			defer close(scrapeDone)
			ticker := time.NewTicker(*scrapeEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					sc.poll(scrapeBase)
				}
			}
		}()
	} else {
		close(scrapeDone)
	}

	// The fleet must land on its own; a hang here is a finding, not a
	// wait. Budget: the run plus a generous drain allowance.
	fleetDone := make(chan struct{})
	go func() { defer close(fleetDone); wg.Wait() }()
	select {
	case <-fleetDone:
	case <-time.After(*duration + 30*time.Second):
		rep.Hung = true
		log.Printf("volload: HANG — fleet still running %v past the deadline", 30*time.Second)
	}
	rep.DurationS = time.Since(start).Seconds()
	cancel()
	<-scrapeDone

	// SLO readout: the engine is authoritative when self-hosting; an
	// external run reads whatever the /sessions scrapes saw last.
	if engine != nil || sc.scrapes > 0 {
		sc.mu.Lock()
		slo := &sloReport{
			Scrapes:       sc.scrapes,
			QuantilesLive: sc.quantilesLive,
			PerSession:    map[string]sessionSLO{},
		}
		lastScrape := map[string]obs.SessionInfo{}
		for _, row := range sc.last {
			lastScrape[row.Scene] = row
		}
		sc.mu.Unlock()
		if engine != nil {
			t := engine.Targets()
			slo.Targets = &t
			for _, st := range engine.Status() {
				slo.PerSession[st.Scene] = sessionSLO{
					Breached:     st.Breached,
					Breaches:     st.Breaches,
					WindowFrames: st.Window.Frames,
					WindowMisses: st.Window.Misses,
					P99MS:        st.Window.P99MS,
				}
			}
		} else {
			for scene, row := range lastScrape {
				slo.PerSession[scene] = sessionSLO{
					Breached:     row.SLOBreached,
					Breaches:     row.SLOBreaches,
					WindowFrames: row.WindowFrames,
					WindowMisses: row.WindowMisses,
					P99MS:        row.P99MS,
				}
			}
		}
		for _, s := range slo.PerSession {
			slo.BreachesTotal += s.Breaches
		}
		if flight != nil {
			slo.FlightDir = flight.Dir()
			dumps, _ := filepath.Glob(filepath.Join(flight.Dir(), "flight_*.json"))
			slo.FlightDumps = len(dumps)
		}
		rep.SLO = slo
	}

	if h != nil {
		h.Shutdown()
	}

	// Aggregate.
	var all []float64
	for i := range stats {
		rep.Frames += int64(stats[i].Frames)
		rep.Cells += int64(stats[i].Cells)
		rep.Bytes += stats[i].Bytes
		rep.FramesDropped += int64(stats[i].FramesDropped)
		rep.DecodeErrors += int64(stats[i].DecodeErrors)
		rep.Reconnects += int64(stats[i].Reconnects)
		rep.Joins += joins[i]
		rep.ClientErrors += errs[i]
		all = append(all, latencies[i]...)
	}
	if *layersOn || *probeUpgrade {
		ls := &layerStats{}
		for i := range stats {
			ls.DeltaCells += int64(stats[i].DeltaCells)
			ls.DeltaBytes += stats[i].DeltaBytes
			ls.DeltaFullBytes += stats[i].DeltaFullBytes
		}
		probeMu.Lock()
		ls.Probes = len(probeStats)
		for i := range probeStats {
			ls.ProbeFrames += int64(probeStats[i].Frames)
			ls.ProbeDropped += int64(probeStats[i].FramesDropped)
			ls.ProbeCells += int64(probeStats[i].Cells)
			ls.DeltaCells += int64(probeStats[i].DeltaCells)
			ls.DeltaBytes += probeStats[i].DeltaBytes
			ls.DeltaFullBytes += probeStats[i].DeltaFullBytes
			rep.DecodeErrors += int64(probeStats[i].DecodeErrors)
		}
		rep.ClientErrors += probeErrs
		probeMu.Unlock()
		if ls.DeltaFullBytes > 0 {
			ls.SavingsFrac = 1 - float64(ls.DeltaBytes)/float64(ls.DeltaFullBytes)
		}
		rep.Layers = ls
	}
	sort.Float64s(all)
	rep.Latency = latencyStats{
		Samples: len(all),
		P50:     percentile(all, 0.50),
		P95:     percentile(all, 0.95),
		P99:     percentile(all, 0.99),
	}
	if n := len(all); n > 0 {
		rep.Latency.Max = all[n-1]
	}
	snap := metrics.Default().Snapshot()
	rep.DropsEnqueue = snap.Counters["transport.drops.enqueue"]
	rep.DropsSlowClient = snap.Counters["transport.drops.slowclient"]
	if h != nil {
		cs := &cacheStats{
			EncodeHits:   snap.Counters["blockcache.encode.hits"],
			EncodeMisses: snap.Counters["blockcache.encode.misses"],
			PerSession:   map[string]hitMiss{},
		}
		if total := cs.EncodeHits + cs.EncodeMisses; total > 0 {
			cs.HitRate = float64(cs.EncodeHits) / float64(total)
		}
		for name, v := range snap.Counters {
			rest, ok := strings.CutPrefix(name, "blockcache.encode.session.")
			if !ok {
				continue
			}
			label, kind, ok := strings.Cut(rest, ".")
			if !ok {
				continue
			}
			hm := cs.PerSession[label]
			switch kind {
			case "hits":
				hm.Hits = v
			case "misses":
				hm.Misses = v
			}
			cs.PerSession[label] = hm
		}
		rep.Cache = cs
	}

	// Leak check: give drained writers/readers a beat to unwind, then
	// record where the goroutine count settled.
	for i := 0; i < 40; i++ {
		if runtime.NumGoroutine() <= goroutinesStart+2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	rep.GoroutinesEnd = runtime.NumGoroutine()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("volload: report written to %s", *out)
	} else {
		os.Stdout.Write(data)
	}
	if *merge != "" {
		if err := mergeIntoBench(*merge, *mergeKey, rep); err != nil {
			log.Fatalf("volload: merge: %v", err)
		}
		log.Printf("volload: merged under %q in %s", *mergeKey, *merge)
		if rep.SLO != nil {
			if err := mergeIntoBench(*merge, "slo", rep.SLO); err != nil {
				log.Fatalf("volload: merge slo: %v", err)
			}
			log.Printf("volload: merged under %q in %s", "slo", *merge)
		}
	}

	log.Printf("volload: %d frames, p50/p95/p99 %.1f/%.1f/%.1f ms, %d joins, %d reconnects, goroutines %d→%d",
		rep.Frames, rep.Latency.P50, rep.Latency.P95, rep.Latency.P99,
		rep.Joins, rep.Reconnects, rep.GoroutinesStart, rep.GoroutinesEnd)
	if rep.Hung {
		log.Fatal("volload: FAILED: run hung")
	}
	if rep.Frames < *minFrames {
		log.Fatalf("volload: FAILED: %d frames < -min-frames %d", rep.Frames, *minFrames)
	}
	// Latency gates run last, after the report has been written/merged, so
	// a red gate still leaves the measured numbers on disk for triage.
	for _, g := range []struct {
		name  string
		limit float64
		got   float64
	}{
		{"p50", *maxP50, rep.Latency.P50},
		{"p95", *maxP95, rep.Latency.P95},
		{"p99", *maxP99, rep.Latency.P99},
	} {
		if g.limit > 0 && g.got > g.limit {
			log.Fatalf("volload: FAILED: %s frame latency %.1fms > -max-%s %.1fms", g.name, g.got, g.name, g.limit)
		}
	}
	// SLO gates: exact breach-count windows for pinned scenarios (the
	// slo-smoke contract is min=max=1), zero tolerance for breaches on
	// uncapped sessions, and a liveness check on the scraped quantiles.
	var breachesTotal int64
	if rep.SLO != nil {
		breachesTotal = rep.SLO.BreachesTotal
	}
	if *minBreaches >= 0 && breachesTotal < *minBreaches {
		log.Fatalf("volload: FAILED: %d SLO breaches < -min-breaches %d", breachesTotal, *minBreaches)
	}
	if *maxBreaches >= 0 && breachesTotal > *maxBreaches {
		log.Fatalf("volload: FAILED: %d SLO breaches > -max-breaches %d", breachesTotal, *maxBreaches)
	}
	if *capScene >= 0 && rep.SLO != nil {
		capLabel := strconv.Itoa(*capScene)
		for scene, s := range rep.SLO.PerSession {
			if scene != capLabel && s.Breaches > 0 {
				log.Fatalf("volload: FAILED: uncapped scene %s breached %d times (only capped scene %s may)", scene, s.Breaches, capLabel)
			}
		}
	}
	if *requireLiveQuantiles {
		if rep.SLO == nil || rep.SLO.Scrapes < 2 || !rep.SLO.QuantilesLive {
			log.Fatal("volload: FAILED: windowed quantiles did not change across two /sessions scrapes")
		}
	}
	// Layered-serving gates: upgrades must actually travel as deltas, the
	// deltas must undercut a full re-send, and (self-host) the shared
	// encode tier must have been hit — the one-encode-serves-every-tier
	// evidence make layer-smoke pins.
	if *minDeltaCells >= 0 {
		var ls layerStats
		if rep.Layers != nil {
			ls = *rep.Layers
		}
		if ls.DeltaCells < *minDeltaCells {
			log.Fatalf("volload: FAILED: %d delta cells < -min-delta-cells %d", ls.DeltaCells, *minDeltaCells)
		}
		if ls.DeltaCells > 0 && ls.DeltaBytes >= ls.DeltaFullBytes {
			log.Fatalf("volload: FAILED: delta bytes %d did not undercut full re-send bytes %d", ls.DeltaBytes, ls.DeltaFullBytes)
		}
	}
	if *minCacheHits >= 0 {
		if rep.Cache == nil {
			log.Fatal("volload: FAILED: -min-cache-hits needs a self-hosted hub (cache stats unavailable)")
		}
		if rep.Cache.EncodeHits < *minCacheHits {
			log.Fatalf("volload: FAILED: %d encode-tier hits < -min-cache-hits %d", rep.Cache.EncodeHits, *minCacheHits)
		}
	}
}

// sceneFactory returns the self-host NewStore: small synthetic content
// per scene, encoded through the scene's labeled view of the shared
// encode tier. A zero stride gives every scene identical content, the
// best case for cross-session sharing.
func sceneFactory(frames, points, performers int, seed, stride int64) func(uint32, codec.BlockCache) (*vivo.Store, error) {
	return func(scene uint32, blocks codec.BlockCache) (*vivo.Store, error) {
		sceneSeed := seed + int64(scene)*stride
		var video *pointcloud.Video
		if performers <= 1 {
			video = pointcloud.SynthVideo(pointcloud.SynthConfig{
				Frames: frames, FPS: 30, PointsPerFrame: points, Seed: sceneSeed, Sway: 1,
			})
		} else {
			video = pointcloud.SynthScene(pointcloud.DefaultSceneConfig(frames, points, sceneSeed))
		}
		b, ok := video.Bounds()
		if !ok {
			return nil, fmt.Errorf("scene %d: empty video", scene)
		}
		g, err := cell.NewGrid(b, cell.Size50)
		if err != nil {
			return nil, err
		}
		enc := codec.NewEncoder(codec.DefaultParams())
		if blocks != nil {
			enc = enc.Cached(blocks)
		}
		return vivo.BuildStore(video, g, enc, []int{1, 2})
	}
}

// percentile reads the q-quantile from an ascending-sorted sample set.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// mergeIntoBench adds the load report to a benchjson document under the
// given top-level key, preserving every other field as-is. A missing
// file is created, so latency gates can run before the bench target has
// snapshotted anything.
func mergeIntoBench(path, key string, rep any) error {
	doc := map[string]any{}
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	case !os.IsNotExist(err):
		return err
	}
	doc[key] = rep
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
