module volcast

go 1.22
