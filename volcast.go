// Package volcast is a multi-user volumetric video streaming system with
// mmWave multicast and cross-layer adaptation — an open reproduction of
// "Innovating Multi-user Volumetric Video Streaming through Cross-layer
// Design" (HotNets '21). The package is the high-level facade: it wires
// the synthetic volumetric content pipeline, the 6DoF audience model, the
// 802.11ad/802.11ac network models, the viewport-similarity multicast
// scheduler and the cross-layer rate adaptation into a few simple types:
//
//	content, _ := volcast.NewContent(volcast.ContentOptions{})
//	audience, _ := volcast.NewAudience(volcast.AudienceOptions{Users: 4})
//	session, _ := volcast.NewSession(content, audience, volcast.SessionOptions{})
//	qoe, _ := session.Run()
//
// The internal packages expose every subsystem (geometry, point clouds,
// cells, codec, traces, visibility, prediction, PHY, beams, MAC,
// multicast, ABR, streaming, wire protocol, transport, experiments) for
// finer-grained use; see DESIGN.md for the map.
package volcast

import (
	"context"
	"fmt"
	"os"
	"time"

	"volcast/internal/cell"
	"volcast/internal/codec"
	"volcast/internal/pointcloud"
	"volcast/internal/stream"
	"volcast/internal/trace"
	"volcast/internal/transport"
	"volcast/internal/vivo"
)

// ContentOptions configure synthetic volumetric content generation.
type ContentOptions struct {
	// Frames is the video length (default 30 = one second).
	Frames int
	// PointsPerFrame is the point budget (default 100_000). The paper's
	// quality ladder uses 330K/430K/550K.
	PointsPerFrame int
	// Performers is the number of humanoids on stage (default 1; the
	// viewport-similarity study uses 3).
	Performers int
	// CellSize is the partition granularity in meters (default 0.5).
	CellSize float64
	// Seed makes generation deterministic (default 1).
	Seed int64
}

// Content is encoded volumetric video ready to stream: partitioned into
// independently decodable cells at a ladder of density strides.
type Content struct {
	store *vivo.Store
	video *pointcloud.Video
}

// NewContent generates and encodes a synthetic volumetric video.
func NewContent(opts ContentOptions) (*Content, error) {
	if opts.Frames <= 0 {
		opts.Frames = 30
	}
	if opts.PointsPerFrame <= 0 {
		opts.PointsPerFrame = 100_000
	}
	if opts.Performers <= 0 {
		opts.Performers = 1
	}
	if opts.CellSize <= 0 {
		opts.CellSize = cell.Size50
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var video *pointcloud.Video
	if opts.Performers == 1 {
		video = pointcloud.SynthVideo(pointcloud.SynthConfig{
			Frames: opts.Frames, FPS: 30, PointsPerFrame: opts.PointsPerFrame,
			Seed: opts.Seed, Sway: 1,
		})
	} else {
		scene := pointcloud.DefaultSceneConfig(opts.Frames, opts.PointsPerFrame, opts.Seed)
		if opts.Performers != len(scene.Offsets) {
			scene.Offsets = scene.Offsets[:min(opts.Performers, len(scene.Offsets))]
		}
		video = pointcloud.SynthScene(scene)
	}
	b, ok := video.Bounds()
	if !ok {
		return nil, fmt.Errorf("volcast: generated video is empty")
	}
	g, err := cell.NewGrid(b, opts.CellSize)
	if err != nil {
		return nil, err
	}
	enc := codec.NewEncoder(codec.DefaultParams())
	store, err := vivo.BuildStore(video, g, enc, []int{1, 2, 3, 4})
	if err != nil {
		return nil, err
	}
	return &Content{store: store, video: video}, nil
}

// LoadContent reads pre-encoded content from a .vcstor container (see
// cmd/volpack). Loaded content can be served and evaluated but reports
// AvgPoints from the encoded blocks rather than the raw video.
func LoadContent(path string) (*Content, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	store, err := vivo.ReadStore(f)
	if err != nil {
		return nil, err
	}
	return &Content{store: store}, nil
}

// Save writes the encoded content to a .vcstor container.
func (c *Content) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := vivo.WriteStore(f, c.store); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Frames returns the video length in frames.
func (c *Content) Frames() int { return c.store.NumFrames() }

// BitrateMbps returns the full-density streaming bitrate at 30 FPS.
func (c *Content) BitrateMbps() float64 {
	return codec.BitrateMbps(c.store.AvgFrameBytes(), 30)
}

// AvgPoints returns the mean points per frame (0 for loaded content,
// which no longer carries the raw clouds).
func (c *Content) AvgPoints() float64 {
	if c.video == nil {
		return 0
	}
	return c.video.AvgPoints()
}

// Store exposes the underlying encoded store for advanced use (internal
// API surface; stable within this module).
func (c *Content) Store() *vivo.Store { return c.store }

// AudienceOptions configure the synthetic multi-user audience.
type AudienceOptions struct {
	// Users is the number of concurrent viewers (default 2).
	Users int
	// Headset selects the free-moving headset behaviour model instead of
	// the phone model.
	Headset bool
	// Frames is the trace length (default: match the content; set it
	// when using the audience standalone).
	Frames int
	// Seed makes generation deterministic (default 1).
	Seed int64
}

// Audience is a set of synthetic 6DoF viewers.
type Audience struct {
	study *trace.Study
}

// NewAudience generates viewer traces.
func NewAudience(opts AudienceOptions) (*Audience, error) {
	if opts.Users <= 0 {
		opts.Users = 2
	}
	if opts.Frames <= 0 {
		opts.Frames = 300
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	dev := trace.DevicePhone
	if opts.Headset {
		dev = trace.DeviceHeadset
	}
	study := trace.Generate(trace.GenConfig{
		Users: opts.Users, Device: dev, Frames: opts.Frames, Hz: 30,
		Seed: opts.Seed, ContentHeight: 1.8, POIs: trace.StudyPOIs(),
	})
	return &Audience{study: study}, nil
}

// Users returns the audience size.
func (a *Audience) Users() int { return a.study.Users() }

// Study exposes the underlying traces.
func (a *Audience) Study() *trace.Study { return a.study }

// SessionOptions configure a streaming session simulation.
type SessionOptions struct {
	// Seconds is the session length (default 2).
	Seconds float64
	// Multicast enables viewport-similarity multicast grouping.
	Multicast bool
	// CustomBeams enables the multi-lobe beam design for groups.
	CustomBeams bool
	// Predictive enables joint viewport prediction and proactive
	// cross-layer actions (prefetch, beam switching).
	Predictive bool
	// WiFi5 runs over the 802.11ac model instead of 802.11ad mmWave.
	WiFi5 bool
	// Fading adds seeded small-scale RSS fading to every link.
	Fading bool
	// AdaptQuality lets the cross-layer controller move users across the
	// quality ladder (requires a Content per rung; the facade runs a
	// single rung, so this mainly exercises the controller).
	AdaptQuality bool
	// Seed drives the session's stochastic components (default 1).
	Seed int64
}

// Session is a configured multi-user streaming run.
type Session struct {
	inner *stream.Session
}

// QoE re-exports the stream engine's quality-of-experience summary.
type QoE = stream.QoE

// NewSession wires content, audience and network into a session.
func NewSession(c *Content, a *Audience, opts SessionOptions) (*Session, error) {
	if c == nil || a == nil {
		return nil, fmt.Errorf("volcast: session needs content and audience")
	}
	if opts.Seconds <= 0 {
		opts.Seconds = 2
	}
	var net *stream.Network
	var err error
	if opts.WiFi5 {
		net, err = stream.NewAC()
	} else {
		net, err = stream.NewAD()
	}
	if err != nil {
		return nil, err
	}
	mode := stream.ModeViVo
	if opts.Multicast {
		mode = stream.ModeMulticast
	}
	inner, err := stream.NewSession(stream.SessionConfig{
		Users:        a.Users(),
		Seconds:      opts.Seconds,
		Mode:         mode,
		CustomBeams:  opts.CustomBeams,
		Predictive:   opts.Predictive,
		StartQuality: pointcloud.QualityLow,
		AdaptQuality: opts.AdaptQuality,
		Fading:       opts.Fading,
		Seed:         opts.Seed,
	}, map[pointcloud.Quality]*vivo.Store{pointcloud.QualityLow: c.store}, a.study, net)
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// Run executes the session and returns its QoE summary.
func (s *Session) Run() (QoE, error) { return s.inner.Run() }

// Serve streams the content over TCP until ctx is canceled. The bound
// address is sent on ready (pass ":0" to pick a free port).
func Serve(ctx context.Context, addr string, c *Content, ready chan<- string) error {
	srv, err := transport.NewServer(transport.ServerConfig{Store: c.store})
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(addr, ready) }()
	select {
	case <-ctx.Done():
		srv.Shutdown()
		<-done
		return nil
	case err := <-done:
		return err
	}
}

// Play connects a synthetic viewer to a volcast server and plays for the
// given duration, returning playback statistics.
func Play(ctx context.Context, addr string, userID int, a *Audience, d time.Duration) (transport.ClientStats, error) {
	var tr *trace.Trace
	if a != nil && userID < a.Users() {
		tr = a.study.Traces[userID]
	}
	return transport.RunClient(ctx, transport.ClientConfig{
		Addr: addr, ID: uint32(userID), Name: fmt.Sprintf("viewer-%d", userID),
		Trace: tr, Duration: d, Decode: true,
	})
}

// PullPlay connects a pull-mode viewer (client-side visibility, explicit
// SegmentRequests) to a volcast server for the given duration.
func PullPlay(ctx context.Context, addr string, userID int, a *Audience, d time.Duration) (transport.ClientStats, error) {
	var tr *trace.Trace
	if a != nil && userID < a.Users() {
		tr = a.study.Traces[userID]
	}
	return transport.RunPullClient(ctx, transport.PullClientConfig{
		Addr: addr, ID: uint32(userID), Trace: tr, Duration: d, Stride: 1, Decode: true,
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
