package volcast

// This file is the benchmark harness mandated by the reproduction: one
// benchmark per table/figure of the paper, each running the same code
// path as the corresponding `volsim` subcommand (at a reduced sample
// count so `go test -bench` stays tractable; use volsim for the
// full-scale numbers recorded in EXPERIMENTS.md).

import (
	"fmt"
	"runtime"
	"testing"

	"volcast/internal/blockcache"
	"volcast/internal/cell"
	"volcast/internal/codec"
	"volcast/internal/experiments"
	"volcast/internal/par"
	"volcast/internal/pointcloud"
	"volcast/internal/stream"
	"volcast/internal/trace"
	"volcast/internal/vivo"
)

// BenchmarkTable1 regenerates Table 1 (multi-user FPS, vanilla vs ViVo,
// 802.11ac vs 802.11ad) at 20% content scale.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Table1Config{
			Frames: 4, Seed: 1, Scale: 0.2, MaxADUsers: 7, MaxACUsers: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFig2a regenerates Fig. 2a (pairwise IoU over time).
func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig2a(experiments.Fig2Config{
			Frames: 120, Seed: 1, ScenePoints: 30_000, UsersPerGroup: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 2 {
			b.Fatal("series count")
		}
	}
}

// BenchmarkFig2b regenerates Fig. 2b (IoU CDFs by device/cell/group).
func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig2b(experiments.Fig2Config{
			Frames: 120, Seed: 1, ScenePoints: 30_000, UsersPerGroup: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 4 {
			b.Fatal("curve count")
		}
	}
}

// BenchmarkFig3b regenerates Fig. 3b (common-RSS CDF per group size).
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig3b(experiments.Fig3Config{
			Samples: 60, Seed: 1, Frames: 90,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 3 {
			b.Fatal("curve count")
		}
	}
}

// BenchmarkFig3d regenerates Fig. 3d (default vs custom beam RSS CDFs).
func BenchmarkFig3d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3d(experiments.Fig3Config{
			Samples: 40, Seed: 1, Frames: 90,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CustomRSS) == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkFig3e regenerates Fig. 3e (normalized throughput bars).
func BenchmarkFig3e(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3e(experiments.Fig3Config{
			Samples: 40, Seed: 1, Frames: 90,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Samples == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkEncodeParallel measures per-cell frame encoding at pool width
// 1 (the pre-parallel sequential path) versus GOMAXPROCS, on the same
// 100K-point frame as BenchmarkCodecModes.
func BenchmarkEncodeParallel(b *testing.B) {
	video := pointcloud.SynthVideo(pointcloud.SynthConfig{
		Frames: 1, FPS: 30, PointsPerFrame: 100_000, Seed: 1, Sway: 1,
	})
	frame := video.Frames[0]
	bounds, _ := frame.Bounds()
	g, err := cell.NewGrid(bounds, cell.Size50)
	if err != nil {
		b.Fatal(err)
	}
	defer par.SetWorkers(0)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			par.SetWorkers(w)
			enc := codec.NewEncoder(codec.DefaultParams())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if blocks := enc.EncodeFrame(g, frame); len(blocks) == 0 {
					b.Fatal("no blocks")
				}
			}
		})
	}
}

// BenchmarkFig3dParallel measures the Fig. 3d beam-design sweep at pool
// width 1 versus GOMAXPROCS (the per-sample custom-beam designs dominate
// and are embarrassingly parallel).
func BenchmarkFig3dParallel(b *testing.B) {
	defer par.SetWorkers(0)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			par.SetWorkers(w)
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig3d(experiments.Fig3Config{
					Samples: 40, Seed: 1, Frames: 90,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.CustomRSS) == 0 {
					b.Fatal("no samples")
				}
			}
		})
	}
}

// benchWorld caches one content+audience world across session benches.
var benchWorldCache struct {
	stores map[pointcloud.Quality]*vivo.Store
	study  *trace.Study
}

func benchWorld(b *testing.B) (map[pointcloud.Quality]*vivo.Store, *trace.Study) {
	b.Helper()
	if benchWorldCache.stores == nil {
		c, err := NewContent(ContentOptions{Frames: 10, PointsPerFrame: 60_000, Performers: 3})
		if err != nil {
			b.Fatal(err)
		}
		benchWorldCache.stores = map[pointcloud.Quality]*vivo.Store{
			pointcloud.QualityLow: c.Store(),
		}
		benchWorldCache.study = trace.GenerateStudy(120, 1)
	}
	return benchWorldCache.stores, benchWorldCache.study
}

// BenchmarkSessionUnicast measures the end-to-end session engine in
// unicast ViVo mode (the Table 1 configuration as a live session).
func BenchmarkSessionUnicast(b *testing.B) {
	stores, study := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := stream.NewAD()
		if err != nil {
			b.Fatal(err)
		}
		s, err := stream.NewSession(stream.SessionConfig{
			Users: 4, Seconds: 1, Mode: stream.ModeViVo,
			StartQuality: pointcloud.QualityLow,
		}, stores, study, net)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionMulticastCustom measures the full proposed system:
// multicast grouping + custom beams + prediction.
func BenchmarkSessionMulticastCustom(b *testing.B) {
	stores, study := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := stream.NewAD()
		if err != nil {
			b.Fatal(err)
		}
		s, err := stream.NewSession(stream.SessionConfig{
			Users: 4, Seconds: 1, Mode: stream.ModeMulticast,
			CustomBeams: true, Predictive: true,
			StartQuality: pointcloud.QualityLow,
		}, stores, study, net)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation runs the DESIGN.md feature-ablation sweep (vanilla →
// +vivo → +multicast → +custom-beams → +prediction) at reduced load.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablation(experiments.AblationConfig{
			Users: 5, Seconds: 1, Points: 80_000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkMultiAP runs the §5 multi-AP spatial-reuse sweep.
func BenchmarkMultiAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MultiAP(60_000, 6, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkPredEval runs the viewport-prediction accuracy sweep.
func BenchmarkPredEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PredEval(300, 1, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkCodecModes is the codec ablation: Morton-delta vs octree
// occupancy vs auto position coding, at a coarse and a fine lattice.
func BenchmarkCodecModes(b *testing.B) {
	video := pointcloud.SynthVideo(pointcloud.SynthConfig{
		Frames: 1, FPS: 30, PointsPerFrame: 100_000, Seed: 1, Sway: 1,
	})
	frame := video.Frames[0]
	bounds, _ := frame.Bounds()
	g, err := cell.NewGrid(bounds, cell.Size50)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		p    codec.Params
	}{
		{"morton-qb10", codec.Params{QuantBits: 10}},
		{"octree-qb10", codec.Params{QuantBits: 10, Octree: true}},
		{"morton-qb6", codec.Params{QuantBits: 6}},
		{"octree-qb6", codec.Params{QuantBits: 6, Octree: true}},
		{"octreeAC-qb6", codec.Params{QuantBits: 6, Arithmetic: true}},
		{"octreeAC-qb10", codec.Params{QuantBits: 10, Arithmetic: true}},
		{"auto-qb6", codec.Params{QuantBits: 6, Auto: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			enc := codec.NewEncoder(cfg.p)
			var bytes int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := codec.Measure(enc.EncodeFrame(g, frame))
				bytes = s.Bytes
			}
			b.ReportMetric(float64(bytes*8)/float64(frame.Len()), "bits/pt")
		})
	}
}

// BenchmarkBuildStoreWarm measures rebuilding the content store when the
// process-wide encode cache already holds every cell (a re-encode of an
// unchanged video): each cell costs one content hash instead of a full
// quantize+sort+code pass.
func BenchmarkBuildStoreWarm(b *testing.B) {
	video := pointcloud.SynthVideo(pointcloud.SynthConfig{
		Frames: 4, FPS: 30, PointsPerFrame: 60_000, Seed: 1, Sway: 1,
	})
	bounds, _ := video.Bounds()
	g, err := cell.NewGrid(bounds, cell.Size50)
	if err != nil {
		b.Fatal(err)
	}
	defer blockcache.SetBudgetMB(-1)
	blockcache.SetBudgetMB(256)
	enc := codec.NewEncoder(codec.DefaultParams())
	if _, err := vivo.BuildStore(video, g, enc, []int{1, 2}); err != nil {
		b.Fatal(err) // prime the encode tier
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vivo.BuildStore(video, g, enc, []int{1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFrameCached measures re-decoding one encoded frame when
// the decode cache already holds every block — the steady-state cost for
// the second and later users of an overlapping viewport.
func BenchmarkDecodeFrameCached(b *testing.B) {
	video := pointcloud.SynthVideo(pointcloud.SynthConfig{
		Frames: 1, FPS: 30, PointsPerFrame: 100_000, Seed: 1, Sway: 1,
	})
	frame := video.Frames[0]
	bounds, _ := frame.Bounds()
	g, err := cell.NewGrid(bounds, cell.Size50)
	if err != nil {
		b.Fatal(err)
	}
	blocks := codec.NewEncoder(codec.DefaultParams()).EncodeFrame(g, frame)
	defer blockcache.SetBudgetMB(-1)
	blockcache.SetBudgetMB(256)
	dec := codec.Decoder{Cache: blockcache.Cells()}
	for _, blk := range blocks {
		if _, err := dec.Decode(blk.Data); err != nil {
			b.Fatal(err) // prime the decode tier
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, blk := range blocks {
			if _, err := dec.Decode(blk.Data); err != nil {
				b.Fatal(err)
			}
		}
	}
}
