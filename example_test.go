package volcast_test

import (
	"fmt"
	"log"

	"volcast"
)

// Example shows the minimal end-to-end use of the facade: synthesize
// content, generate an audience, and simulate a multicast session.
func Example() {
	content, err := volcast.NewContent(volcast.ContentOptions{
		Frames: 5, PointsPerFrame: 8_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	audience, err := volcast.NewAudience(volcast.AudienceOptions{Users: 2, Frames: 30})
	if err != nil {
		log.Fatal(err)
	}
	session, err := volcast.NewSession(content, audience, volcast.SessionOptions{
		Seconds: 0.2, Multicast: true, CustomBeams: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	qoe, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stalls: %d\n", qoe.Stalls)
	// Output: stalls: 0
}
